"""SDN 5-tuple ECMP — TE scheme (iii) of the demonstration.

Reactive equal-cost multipath: the first packet of a flow misses at
its ingress edge switch and arrives as a PACKET_IN.  The app hashes
the flow's full five-tuple (IP src, IP dst, protocol, transport src,
transport dst — the paper's exact field list) over the equal-cost
paths toward the destination's edge switch, then installs exact-match
entries along the *entire* chosen path so no further switch misses.

Control-plane activity is therefore concentrated at the start of the
experiment (all demo flows begin at t=0), which is the behaviour the
paper contrasts with Hedera's periodic polling.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.controllers.topology_view import TopologyView
from repro.netproto.hashing import ecmp_hash, five_tuple_hash
from repro.netproto.packet import FiveTuple, Packet
from repro.openflow.actions import ActionOutput
from repro.openflow.controller import ControllerApp, Datapath
from repro.openflow.match import Match
from repro.openflow.messages import PacketIn


class FiveTupleEcmpApp(ControllerApp):
    """Reactive five-tuple ECMP with path-wide installation."""

    name = "ecmp-5tuple"

    def __init__(self, topology: TopologyView, priority: int = 300,
                 hash_seed: int = 0, idle_timeout: int = 0):
        super().__init__()
        self.topology = topology
        self.priority = priority
        self.hash_seed = hash_seed
        self.idle_timeout = idle_timeout
        self.flows_placed = 0
        self.entries_installed = 0
        # flow -> switch-level path, for tests and for Hedera reuse.
        self.placements: Dict[FiveTuple, List[str]] = {}

    def on_packet_in(self, dp: Datapath, message: PacketIn) -> None:
        packet = Packet.decode(message.data)
        flow = packet.five_tuple()
        if flow is None:
            return  # non-IP traffic is not our business
        if flow in self.placements:
            return  # already placed; a second miss raced the installs
        src_loc = self.topology.locate_ip(flow.src_ip)
        dst_loc = self.topology.locate_ip(flow.dst_ip)
        if src_loc is None or dst_loc is None:
            return
        path = self.select_path(flow, src_loc.switch_name, dst_loc.switch_name)
        if path is None:
            return
        self.install_path(flow, path, dst_loc.switch_port)
        self.placements[flow] = path
        self.flows_placed += 1

    def select_path(self, flow: FiveTuple, src_switch: str,
                    dst_switch: str) -> Optional[List[str]]:
        """Hash the five-tuple over the equal-cost path set."""
        paths = self.topology.equal_cost_paths(src_switch, dst_switch)
        if not paths:
            return None
        index = ecmp_hash(five_tuple_hash(flow, seed=self.hash_seed), len(paths))
        return paths[index]

    def install_path(self, flow: FiveTuple, path: List[str],
                     last_hop_port: int) -> None:
        """Install exact-match entries on every switch of the path."""
        match = Match.exact_five_tuple(flow)
        for position, switch_name in enumerate(path):
            dp = self.controller.datapath_by_name(switch_name)
            if dp is None:
                continue
            if position + 1 < len(path):
                out_port = self.topology.port_toward(switch_name, path[position + 1])
            else:
                out_port = last_hop_port
            if out_port is None:
                continue
            self.entries_installed += 1
            dp.flow_mod(
                match=match,
                actions=[ActionOutput(out_port)],
                priority=self.priority,
                idle_timeout=self.idle_timeout,
            )
