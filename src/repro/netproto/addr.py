"""IPv4 and MAC address types.

The simulator manipulates addresses constantly — every flow, FIB entry,
BGP route and OpenFlow match carries them — so these types are small
immutable wrappers around integers.  They hash and compare as fast as
ints while printing like the familiar dotted-quad / colon-hex notation.
"""

from __future__ import annotations

import re
from functools import total_ordering


class AddressError(ValueError):
    """Raised when an address or prefix cannot be parsed or is invalid."""


_DOTTED_QUAD_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")
_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")

MAX_IPV4 = 0xFFFFFFFF
MAX_MAC = 0xFFFFFFFFFFFF


@total_ordering
class IPv4Address:
    """An immutable IPv4 address backed by a 32-bit integer.

    Accepts either a dotted-quad string or an integer::

        >>> IPv4Address("10.0.0.1")
        IPv4Address('10.0.0.1')
        >>> int(IPv4Address("10.0.0.1"))
        167772161
    """

    __slots__ = ("_value",)

    def __init__(self, value: "str | int | IPv4Address"):
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= MAX_IPV4:
                raise AddressError(f"IPv4 integer out of range: {value!r}")
            self._value = value
        elif isinstance(value, str):
            self._value = _parse_dotted_quad(value)
        else:
            raise AddressError(f"cannot build IPv4Address from {value!r}")

    @property
    def value(self) -> int:
        """The raw 32-bit integer value."""
        return self._value

    def packed(self) -> bytes:
        """The 4-byte big-endian wire representation."""
        return self._value.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Address":
        """Build an address from its 4-byte wire representation."""
        if len(data) != 4:
            raise AddressError(f"IPv4 address needs 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __str__(self) -> str:
        v = self._value
        return f"{v >> 24 & 0xFF}.{v >> 16 & 0xFF}.{v >> 8 & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        if isinstance(other, str):
            try:
                return self._value == _parse_dotted_quad(other)
            except AddressError:
                return NotImplemented
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        if not isinstance(other, IPv4Address):
            return NotImplemented
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self._value + offset)


def _parse_dotted_quad(text: str) -> int:
    match = _DOTTED_QUAD_RE.match(text.strip())
    if match is None:
        raise AddressError(f"not a dotted-quad IPv4 address: {text!r}")
    value = 0
    for group in match.groups():
        octet = int(group)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


@total_ordering
class IPv4Prefix:
    """An IPv4 network prefix, e.g. ``10.1.0.0/16``.

    The host bits of the supplied address are masked off, so
    ``IPv4Prefix("10.1.2.3/16")`` normalises to ``10.1.0.0/16``.
    """

    __slots__ = ("_network", "_length")

    def __init__(self, prefix: "str | IPv4Prefix", length: "int | None" = None):
        if isinstance(prefix, IPv4Prefix):
            self._network = prefix._network
            self._length = prefix._length
            return
        if isinstance(prefix, str) and length is None:
            if "/" not in prefix:
                raise AddressError(f"prefix needs a /length: {prefix!r}")
            addr_text, __, len_text = prefix.partition("/")
            try:
                length = int(len_text)
            except ValueError:
                raise AddressError(f"bad prefix length in {prefix!r}") from None
            address = IPv4Address(addr_text)
        else:
            address = IPv4Address(prefix)  # type: ignore[arg-type]
        if length is None or not 0 <= length <= 32:
            raise AddressError(f"prefix length out of range: {length!r}")
        self._length = length
        self._network = int(address) & self.mask_int()

    @classmethod
    def from_network(cls, network: "IPv4Address | int", length: int) -> "IPv4Prefix":
        """Build a prefix from a network address and a length."""
        return cls(str(IPv4Address(network)) + f"/{length}")

    @property
    def network(self) -> IPv4Address:
        """The (masked) network address."""
        return IPv4Address(self._network)

    @property
    def length(self) -> int:
        """The prefix length in bits (0-32)."""
        return self._length

    def mask_int(self) -> int:
        """The netmask as a 32-bit integer."""
        if self._length == 0:
            return 0
        return (MAX_IPV4 << (32 - self._length)) & MAX_IPV4

    @property
    def netmask(self) -> IPv4Address:
        """The netmask as an address, e.g. ``255.255.0.0``."""
        return IPv4Address(self.mask_int())

    def contains(self, address: "IPv4Address | str | int") -> bool:
        """Whether ``address`` falls inside this prefix."""
        return (int(IPv4Address(address)) & self.mask_int()) == self._network

    def overlaps(self, other: "IPv4Prefix") -> bool:
        """Whether the two prefixes share any address."""
        shorter, longer = sorted((self, other), key=lambda p: p.length)
        mask = shorter.mask_int()
        return (longer._network & mask) == shorter._network

    def subnets(self, new_length: int):
        """Iterate over the subnets of this prefix at ``new_length``.

        >>> [str(p) for p in IPv4Prefix("10.0.0.0/30").subnets(31)]
        ['10.0.0.0/31', '10.0.0.2/31']
        """
        if not self._length <= new_length <= 32:
            raise AddressError(
                f"cannot split /{self._length} into /{new_length} subnets"
            )
        step = 1 << (32 - new_length)
        count = 1 << (new_length - self._length)
        for index in range(count):
            yield IPv4Prefix.from_network(self._network + index * step, new_length)

    def hosts(self):
        """Iterate over usable host addresses (excludes network/broadcast
        for prefixes shorter than /31)."""
        size = 1 << (32 - self._length)
        if self._length >= 31:
            start, stop = self._network, self._network + size
        else:
            start, stop = self._network + 1, self._network + size - 1
        for value in range(start, stop):
            yield IPv4Address(value)

    def num_addresses(self) -> int:
        """Total number of addresses covered by the prefix."""
        return 1 << (32 - self._length)

    def key(self) -> tuple:
        """A sortable (network, length) tuple, handy for deterministic RIB walks."""
        return (self._network, self._length)

    def __str__(self) -> str:
        return f"{self.network}/{self._length}"

    def __repr__(self) -> str:
        return f"IPv4Prefix('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Prefix):
            return (self._network, self._length) == (other._network, other._length)
        if isinstance(other, str):
            try:
                return self == IPv4Prefix(other)
            except AddressError:
                return NotImplemented
        return NotImplemented

    def __lt__(self, other: "IPv4Prefix") -> bool:
        if not isinstance(other, IPv4Prefix):
            return NotImplemented
        return self.key() < other.key()

    def __hash__(self) -> int:
        return hash((self._network, self._length))


@total_ordering
class MACAddress:
    """An immutable 48-bit Ethernet MAC address."""

    __slots__ = ("_value",)

    def __init__(self, value: "str | int | MACAddress"):
        if isinstance(value, MACAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= MAX_MAC:
                raise AddressError(f"MAC integer out of range: {value!r}")
            self._value = value
        elif isinstance(value, str):
            text = value.strip()
            if not _MAC_RE.match(text):
                raise AddressError(f"not a MAC address: {value!r}")
            self._value = int(text.replace(":", "").replace("-", ""), 16)
        else:
            raise AddressError(f"cannot build MACAddress from {value!r}")

    BROADCAST_VALUE = MAX_MAC

    @classmethod
    def broadcast(cls) -> "MACAddress":
        """The all-ones broadcast address ``ff:ff:ff:ff:ff:ff``."""
        return cls(cls.BROADCAST_VALUE)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MACAddress":
        """Build an address from its 6-byte wire representation."""
        if len(data) != 6:
            raise AddressError(f"MAC address needs 6 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def packed(self) -> bytes:
        """The 6-byte big-endian wire representation."""
        return self._value.to_bytes(6, "big")

    def is_broadcast(self) -> bool:
        """Whether this is the broadcast address."""
        return self._value == self.BROADCAST_VALUE

    def is_multicast(self) -> bool:
        """Whether the group bit (LSB of the first octet) is set."""
        return bool((self._value >> 40) & 0x01)

    @property
    def value(self) -> int:
        """The raw 48-bit integer value."""
        return self._value

    def __int__(self) -> int:
        return self._value

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MACAddress('{self}')"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MACAddress):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        if isinstance(other, str):
            try:
                return self == MACAddress(other)
            except AddressError:
                return NotImplemented
        return NotImplemented

    def __lt__(self, other: "MACAddress") -> bool:
        if not isinstance(other, MACAddress):
            return NotImplemented
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)
