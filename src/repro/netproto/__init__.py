"""Wire-level networking substrate.

This package provides the low-level building blocks the rest of the
library depends on: IPv4 and MAC addressing, prefixes, a longest-prefix
match trie, packet header codecs (Ethernet, IPv4, UDP, TCP) and the
hashing primitives used for ECMP path selection.

Everything here is implemented from scratch (no dependency on the
standard :mod:`ipaddress` module) so that the data structures match the
needs of the simulator: integer-backed addresses that are cheap to hash
and compare, and a trie tuned for the forwarding lookups the data plane
performs on every flow path computation.
"""

from repro.netproto.addr import (
    MACAddress,
    IPv4Address,
    IPv4Prefix,
    AddressError,
)
from repro.netproto.trie import PrefixTrie
from repro.netproto.checksum import internet_checksum
from repro.netproto.packet import (
    EthernetHeader,
    IPv4Header,
    UDPHeader,
    TCPHeader,
    Packet,
    FiveTuple,
    ETHERTYPE_IPV4,
    ETHERTYPE_ARP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPPROTO_ICMP,
)
from repro.netproto.hashing import ecmp_hash, five_tuple_hash, two_tuple_hash

__all__ = [
    "MACAddress",
    "IPv4Address",
    "IPv4Prefix",
    "AddressError",
    "PrefixTrie",
    "internet_checksum",
    "EthernetHeader",
    "IPv4Header",
    "UDPHeader",
    "TCPHeader",
    "Packet",
    "FiveTuple",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_ARP",
    "IPPROTO_TCP",
    "IPPROTO_UDP",
    "IPPROTO_ICMP",
    "ecmp_hash",
    "five_tuple_hash",
    "two_tuple_hash",
]
