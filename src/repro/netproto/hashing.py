"""Deterministic hashing for ECMP path selection.

Hardware switches pick among equal-cost next hops with a hash over
header fields.  The demo in the paper uses two variants:

* **BGP + ECMP** — hash of (IP source, IP destination) only;
* **SDN 5-tuple ECMP** — hash of the full five-tuple.

Python's builtin ``hash`` is salted per process, so we implement a
small FNV-1a based mix that is stable across runs — experiments must be
reproducible bit-for-bit with the same seed.
"""

from __future__ import annotations

from typing import Sequence

from repro.netproto.addr import IPv4Address
from repro.netproto.packet import FiveTuple

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def _fnv1a(values: Sequence[int], seed: int = 0) -> int:
    """FNV-1a over a sequence of integers, byte by byte."""
    state = _FNV_OFFSET ^ (seed * _FNV_PRIME & 0xFFFFFFFFFFFFFFFF)
    for value in values:
        # Mix 8 bytes of each value; ports and protocols simply have
        # leading zero bytes, which is fine for FNV.
        for shift in range(0, 64, 8):
            state ^= (value >> shift) & 0xFF
            state = (state * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return state


def two_tuple_hash(
    src_ip: "IPv4Address | int", dst_ip: "IPv4Address | int", seed: int = 0
) -> int:
    """Stable hash of (source IP, destination IP) — the BGP ECMP variant."""
    return _fnv1a((int(src_ip), int(dst_ip)), seed=seed)


def five_tuple_hash(flow: FiveTuple, seed: int = 0) -> int:
    """Stable hash of the full five-tuple — the SDN ECMP variant."""
    return _fnv1a(flow.as_tuple(), seed=seed)


def ecmp_hash(key: int, num_paths: int) -> int:
    """Map a hash value onto one of ``num_paths`` equal-cost choices."""
    if num_paths <= 0:
        raise ValueError("num_paths must be positive")
    return key % num_paths
