"""Longest-prefix-match binary trie.

Both the router FIB and the BGP Loc-RIB need longest-prefix matching.
This is a classic uncompressed binary trie over the 32 address bits:
insert/delete/exact-lookup are O(prefix length), and a longest-prefix
lookup walks at most 32 nodes while remembering the deepest node that
carried a value.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Tuple

from repro.netproto.addr import IPv4Address, IPv4Prefix


class _TrieNode:
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list[Optional[_TrieNode]] = [None, None]
        self.value: Any = None
        self.has_value = False


class PrefixTrie:
    """Maps :class:`IPv4Prefix` keys to arbitrary values with LPM lookup.

    >>> trie = PrefixTrie()
    >>> trie.insert(IPv4Prefix("10.0.0.0/8"), "coarse")
    >>> trie.insert(IPv4Prefix("10.1.0.0/16"), "fine")
    >>> trie.lookup(IPv4Address("10.1.2.3"))
    (IPv4Prefix('10.1.0.0/16'), 'fine')
    >>> trie.lookup(IPv4Address("10.9.9.9"))
    (IPv4Prefix('10.0.0.0/8'), 'coarse')
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return self.get(prefix, default=_MISSING) is not _MISSING

    def insert(self, prefix: IPv4Prefix, value: Any) -> None:
        """Insert or replace the value stored at ``prefix``."""
        node = self._descend_create(prefix)
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def get(self, prefix: IPv4Prefix, default: Any = None) -> Any:
        """Exact-match lookup; returns ``default`` when absent."""
        node = self._descend(prefix)
        if node is None or not node.has_value:
            return default
        return node.value

    def delete(self, prefix: IPv4Prefix) -> bool:
        """Remove ``prefix``. Returns True when something was removed."""
        path: list[Tuple[_TrieNode, int]] = []
        node = self._root
        network = int(prefix.network)
        for depth in range(prefix.length):
            bit = (network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                return False
            path.append((node, bit))
            node = child
        if not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        # Prune now-empty leaf chain so memory does not grow unboundedly
        # under churny workloads (BGP withdraw storms).
        for parent, bit in reversed(path):
            child = parent.children[bit]
            if child is None:
                break
            if child.has_value or child.children[0] or child.children[1]:
                break
            parent.children[bit] = None
        return True

    def lookup(
        self, address: "IPv4Address | int | str"
    ) -> Optional[Tuple[IPv4Prefix, Any]]:
        """Longest-prefix match for ``address``.

        Returns the matching ``(prefix, value)`` pair, or ``None`` when
        no stored prefix covers the address.
        """
        value = int(IPv4Address(address))
        node = self._root
        best: Optional[Tuple[int, Any]] = None
        if node.has_value:  # default route 0.0.0.0/0
            best = (0, node.value)
        for depth in range(32):
            bit = (value >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (depth + 1, node.value)
        if best is None:
            return None
        length, stored = best
        mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
        return IPv4Prefix.from_network(value & mask, length), stored

    def lookup_value(
        self, address: "IPv4Address | int | str", default: Any = None
    ) -> Any:
        """Longest-prefix match returning only the stored value.

        The hot path of data-plane forwarding: unlike :meth:`lookup`
        it never materialises the matching prefix object.
        """
        value = address if type(address) is int else int(IPv4Address(address))
        node = self._root
        best = node.value if node.has_value else default
        found = node.has_value
        for depth in range(32):
            bit = (value >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = node.value
                found = True
        return best if found else default

    def items(self) -> Iterator[Tuple[IPv4Prefix, Any]]:
        """Iterate over ``(prefix, value)`` pairs in network/length order."""
        stack: list[Tuple[_TrieNode, int, int]] = [(self._root, 0, 0)]
        while stack:
            node, network, depth = stack.pop()
            if node.has_value:
                yield IPv4Prefix.from_network(network << (32 - depth) if depth else 0, depth), node.value
            # Push right child first so the left (0) branch pops first,
            # giving ascending network order.
            right = node.children[1]
            if right is not None and depth < 32:
                stack.append((right, (network << 1) | 1, depth + 1))
            left = node.children[0]
            if left is not None and depth < 32:
                stack.append((left, network << 1, depth + 1))

    def keys(self) -> Iterator[IPv4Prefix]:
        """Iterate over stored prefixes."""
        for prefix, __ in self.items():
            yield prefix

    def clear(self) -> None:
        """Remove all entries."""
        self._root = _TrieNode()
        self._size = 0

    def _descend(self, prefix: IPv4Prefix) -> Optional[_TrieNode]:
        node = self._root
        network = int(prefix.network)
        for depth in range(prefix.length):
            bit = (network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                return None
            node = child
        return node

    def _descend_create(self, prefix: IPv4Prefix) -> _TrieNode:
        node = self._root
        network = int(prefix.network)
        for depth in range(prefix.length):
            bit = (network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                child = _TrieNode()
                node.children[bit] = child
            node = child
        return node


_MISSING = object()
