"""The Internet checksum (RFC 1071).

Used by the IPv4 header codec and by the UDP/TCP codecs when a caller
asks for real checksums on control-plane packets.
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """Compute the 16-bit one's-complement Internet checksum of ``data``.

    Odd-length input is padded with a zero byte, per RFC 1071.

    >>> header = bytes.fromhex("45000073000040004011" "0000" "c0a80001c0a800c7")
    >>> hex(internet_checksum(header))  # classic example header
    '0xb861'
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        total += (data[index] << 8) | data[index + 1]
    # Fold carries until the sum fits in 16 bits.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (checksum field included) sums to zero."""
    return internet_checksum(data) == 0
