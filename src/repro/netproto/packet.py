"""Packet header codecs: Ethernet, IPv4, UDP and TCP.

Two consumers need real packets:

* the emulated control plane — BGP messages ride inside TCP/IPv4/Ethernet
  frames so the Connection Manager observes genuine byte streams, and
  OpenFlow PACKET_IN/PACKET_OUT carry real frames;
* the packet-level baseline emulator (`repro.baseline`), which forwards
  every packet individually the way Mininet's data plane would.

Headers are plain dataclasses with ``encode``/``decode`` round-tripping
through the standard wire format.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.netproto.addr import IPv4Address, MACAddress
from repro.netproto.checksum import internet_checksum

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806

IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17

ETHERNET_HEADER_LEN = 14
IPV4_MIN_HEADER_LEN = 20
UDP_HEADER_LEN = 8
TCP_MIN_HEADER_LEN = 20


class PacketDecodeError(ValueError):
    """Raised when bytes cannot be parsed as the expected header."""


@dataclass(frozen=True)
class FiveTuple:
    """The classic flow identifier used for ECMP hashing and flow tables."""

    src_ip: IPv4Address
    dst_ip: IPv4Address
    protocol: int
    src_port: int
    dst_port: int

    def reversed(self) -> "FiveTuple":
        """The same flow seen from the other direction."""
        return FiveTuple(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            protocol=self.protocol,
            src_port=self.dst_port,
            dst_port=self.src_port,
        )

    def as_tuple(self) -> Tuple[int, int, int, int, int]:
        """Plain-int view, stable across processes (unlike ``hash``)."""
        return (
            int(self.src_ip),
            int(self.dst_ip),
            self.protocol,
            self.src_port,
            self.dst_port,
        )

    def __str__(self) -> str:
        return (
            f"{self.src_ip}:{self.src_port} -> "
            f"{self.dst_ip}:{self.dst_port} proto={self.protocol}"
        )


@dataclass
class EthernetHeader:
    """An Ethernet II frame header."""

    dst: MACAddress
    src: MACAddress
    ethertype: int = ETHERTYPE_IPV4

    def encode(self) -> bytes:
        """Serialise to the 14-byte wire format."""
        return self.dst.packed() + self.src.packed() + struct.pack("!H", self.ethertype)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["EthernetHeader", bytes]:
        """Parse a frame header; returns (header, payload)."""
        if len(data) < ETHERNET_HEADER_LEN:
            raise PacketDecodeError("truncated Ethernet header")
        dst = MACAddress.from_bytes(data[0:6])
        src = MACAddress.from_bytes(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(dst=dst, src=src, ethertype=ethertype), data[14:]


@dataclass
class IPv4Header:
    """An IPv4 header (no options support — IHL is always 5)."""

    src: IPv4Address
    dst: IPv4Address
    protocol: int = IPPROTO_UDP
    ttl: int = 64
    identification: int = 0
    dscp: int = 0
    total_length: int = IPV4_MIN_HEADER_LEN
    flags: int = 0
    fragment_offset: int = 0

    def encode(self, payload_length: "int | None" = None) -> bytes:
        """Serialise to wire format with a correct header checksum.

        When ``payload_length`` is given, the total-length field is set
        to header length + payload length.
        """
        total = self.total_length
        if payload_length is not None:
            total = IPV4_MIN_HEADER_LEN + payload_length
        version_ihl = (4 << 4) | 5
        flags_frag = (self.flags << 13) | self.fragment_offset
        without_checksum = struct.pack(
            "!BBHHHBBH4s4s",
            version_ihl,
            self.dscp << 2,
            total,
            self.identification,
            flags_frag,
            self.ttl,
            self.protocol,
            0,
            self.src.packed(),
            self.dst.packed(),
        )
        checksum = internet_checksum(without_checksum)
        return without_checksum[:10] + struct.pack("!H", checksum) + without_checksum[12:]

    @classmethod
    def decode(cls, data: bytes) -> Tuple["IPv4Header", bytes]:
        """Parse an IPv4 header; returns (header, payload).

        The payload is truncated to the header's total-length field so
        Ethernet padding does not leak into upper layers.
        """
        if len(data) < IPV4_MIN_HEADER_LEN:
            raise PacketDecodeError("truncated IPv4 header")
        (
            version_ihl,
            tos,
            total,
            identification,
            flags_frag,
            ttl,
            protocol,
            __,
            src_raw,
            dst_raw,
        ) = struct.unpack("!BBHHHBBH4s4s", data[:IPV4_MIN_HEADER_LEN])
        version = version_ihl >> 4
        ihl = version_ihl & 0x0F
        if version != 4:
            raise PacketDecodeError(f"not IPv4 (version={version})")
        if ihl < 5:
            raise PacketDecodeError(f"bad IHL {ihl}")
        header_len = ihl * 4
        if len(data) < header_len:
            raise PacketDecodeError("truncated IPv4 options")
        header = cls(
            src=IPv4Address.from_bytes(src_raw),
            dst=IPv4Address.from_bytes(dst_raw),
            protocol=protocol,
            ttl=ttl,
            identification=identification,
            dscp=tos >> 2,
            total_length=total,
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
        )
        payload_len = max(0, total - header_len)
        return header, data[header_len : header_len + payload_len]


@dataclass
class UDPHeader:
    """A UDP header; length covers header + payload."""

    src_port: int
    dst_port: int
    length: int = UDP_HEADER_LEN

    def encode(self, payload_length: "int | None" = None) -> bytes:
        """Serialise to the 8-byte wire format (checksum 0 = disabled)."""
        length = self.length
        if payload_length is not None:
            length = UDP_HEADER_LEN + payload_length
        return struct.pack("!HHHH", self.src_port, self.dst_port, length, 0)

    @classmethod
    def decode(cls, data: bytes) -> Tuple["UDPHeader", bytes]:
        """Parse a UDP header; returns (header, payload)."""
        if len(data) < UDP_HEADER_LEN:
            raise PacketDecodeError("truncated UDP header")
        src_port, dst_port, length, __ = struct.unpack("!HHHH", data[:UDP_HEADER_LEN])
        header = cls(src_port=src_port, dst_port=dst_port, length=length)
        payload_len = max(0, length - UDP_HEADER_LEN)
        return header, data[UDP_HEADER_LEN : UDP_HEADER_LEN + payload_len]


# TCP flag bits.
TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10


@dataclass
class TCPHeader:
    """A TCP header (no options — data offset is always 5).

    The emulated control plane uses this to frame BGP sessions; the
    simulator's reliable channel takes care of retransmission, so the
    sequence numbers here exist for wire realism and tracing.
    """

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = TCP_ACK
    window: int = 65535

    def encode(self) -> bytes:
        """Serialise to the 20-byte wire format (checksum 0)."""
        offset_flags = (5 << 12) | (self.flags & 0x3F)
        return struct.pack(
            "!HHIIHHHH",
            self.src_port,
            self.dst_port,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            offset_flags,
            self.window,
            0,
            0,
        )

    @classmethod
    def decode(cls, data: bytes) -> Tuple["TCPHeader", bytes]:
        """Parse a TCP header; returns (header, payload)."""
        if len(data) < TCP_MIN_HEADER_LEN:
            raise PacketDecodeError("truncated TCP header")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_flags,
            window,
            __,
            ___,
        ) = struct.unpack("!HHIIHHHH", data[:TCP_MIN_HEADER_LEN])
        offset = (offset_flags >> 12) * 4
        if offset < TCP_MIN_HEADER_LEN or len(data) < offset:
            raise PacketDecodeError("bad TCP data offset")
        header = cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=offset_flags & 0x3F,
            window=window,
        )
        return header, data[offset:]

    def has_flag(self, flag: int) -> bool:
        """Whether a given TCP_* flag bit is set."""
        return bool(self.flags & flag)


@dataclass
class Packet:
    """A fully formed simulated packet.

    Keeps the decoded headers alongside an optional payload; ``encode``
    produces the full frame, and :meth:`decode` parses one back.  The
    ``size`` attribute is the nominal on-wire size in bytes used by the
    packet-level baseline (the payload itself may be elided to save
    memory for bulk data traffic).
    """

    eth: EthernetHeader
    ip: Optional[IPv4Header] = None
    l4: "UDPHeader | TCPHeader | None" = None
    payload: bytes = b""
    size: int = 0

    def __post_init__(self) -> None:
        if self.size <= 0:
            self.size = self.wire_length()

    def wire_length(self) -> int:
        """Length of the encoded frame in bytes."""
        length = ETHERNET_HEADER_LEN + len(self.payload)
        if self.ip is not None:
            length += IPV4_MIN_HEADER_LEN
        if isinstance(self.l4, UDPHeader):
            length += UDP_HEADER_LEN
        elif isinstance(self.l4, TCPHeader):
            length += TCP_MIN_HEADER_LEN
        return length

    def encode(self) -> bytes:
        """Serialise the full frame to bytes."""
        parts = [self.eth.encode()]
        l4_bytes = b""
        if isinstance(self.l4, UDPHeader):
            l4_bytes = self.l4.encode(payload_length=len(self.payload))
        elif isinstance(self.l4, TCPHeader):
            l4_bytes = self.l4.encode()
        if self.ip is not None:
            ip_payload_len = len(l4_bytes) + len(self.payload)
            parts.append(self.ip.encode(payload_length=ip_payload_len))
        parts.append(l4_bytes)
        parts.append(self.payload)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "Packet":
        """Parse a frame; unknown ethertypes keep the raw payload."""
        eth, rest = EthernetHeader.decode(data)
        packet = cls(eth=eth, payload=rest, size=len(data))
        if eth.ethertype != ETHERTYPE_IPV4:
            return packet
        ip, rest = IPv4Header.decode(rest)
        packet.ip = ip
        packet.payload = rest
        if ip.protocol == IPPROTO_UDP:
            udp, rest = UDPHeader.decode(rest)
            packet.l4 = udp
            packet.payload = rest
        elif ip.protocol == IPPROTO_TCP:
            tcp, rest = TCPHeader.decode(rest)
            packet.l4 = tcp
            packet.payload = rest
        return packet

    def five_tuple(self) -> Optional[FiveTuple]:
        """The packet's flow identifier, or None for non-IP frames."""
        if self.ip is None:
            return None
        src_port = dst_port = 0
        if self.l4 is not None:
            src_port = self.l4.src_port
            dst_port = self.l4.dst_port
        return FiveTuple(
            src_ip=self.ip.src,
            dst_ip=self.ip.dst,
            protocol=self.ip.protocol,
            src_port=src_port,
            dst_port=dst_port,
        )


def make_udp_packet(
    src_mac: MACAddress,
    dst_mac: MACAddress,
    src_ip: IPv4Address,
    dst_ip: IPv4Address,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    size: int = 0,
) -> Packet:
    """Convenience constructor for a UDP datagram frame."""
    return Packet(
        eth=EthernetHeader(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV4),
        ip=IPv4Header(src=src_ip, dst=dst_ip, protocol=IPPROTO_UDP),
        l4=UDPHeader(src_port=src_port, dst_port=dst_port),
        payload=payload,
        size=size,
    )


def make_tcp_packet(
    src_mac: MACAddress,
    dst_mac: MACAddress,
    src_ip: IPv4Address,
    dst_ip: IPv4Address,
    src_port: int,
    dst_port: int,
    flags: int = TCP_ACK,
    payload: bytes = b"",
    size: int = 0,
) -> Packet:
    """Convenience constructor for a TCP segment frame."""
    return Packet(
        eth=EthernetHeader(dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV4),
        ip=IPv4Header(src=src_ip, dst=dst_ip, protocol=IPPROTO_TCP),
        l4=TCPHeader(src_port=src_port, dst_port=dst_port, flags=flags),
        payload=payload,
        size=size,
    )
