"""OpenFlow protocol constants (1.0-flavoured)."""

from __future__ import annotations

import enum

# We advertise version 1 (OpenFlow 1.0); the subset implemented is the
# one Horse's demo needs (flow-mods, packet-in/out, port & flow stats).
OFP_VERSION = 0x01

OFP_HEADER_LEN = 8
OFP_NO_BUFFER = 0xFFFFFFFF
OFP_DEFAULT_PRIORITY = 0x8000
OFP_FLOW_PERMANENT = 0  # idle/hard timeout value meaning "never expire"


class MsgType(enum.IntEnum):
    """OpenFlow message type codes (ofp_type)."""

    HELLO = 0
    ERROR = 1
    ECHO_REQUEST = 2
    ECHO_REPLY = 3
    FEATURES_REQUEST = 5
    FEATURES_REPLY = 6
    PACKET_IN = 10
    FLOW_REMOVED = 11
    PORT_STATUS = 12
    PACKET_OUT = 13
    FLOW_MOD = 14
    GROUP_MOD = 15  # OF 1.1+ extension: select groups for ECMP
    STATS_REQUEST = 16
    STATS_REPLY = 17
    BARRIER_REQUEST = 18
    BARRIER_REPLY = 19


class PortNo(enum.IntEnum):
    """Reserved port numbers (subset of ofp_port).

    Ports are 32-bit here (an OF 1.3-ism kept for headroom; OF 1.0 used
    16-bit ports — documented deviation).
    """

    IN_PORT = 0xFFFFFFF8
    FLOOD = 0xFFFFFFFB
    ALL = 0xFFFFFFFC
    CONTROLLER = 0xFFFFFFFD
    LOCAL = 0xFFFFFFFE
    ANY = 0xFFFFFFFF


class FlowModCommand(enum.IntEnum):
    """ofp_flow_mod_command."""

    ADD = 0
    MODIFY = 1
    MODIFY_STRICT = 2
    DELETE = 3
    DELETE_STRICT = 4


class StatsType(enum.IntEnum):
    """ofp_stats_types (subset)."""

    FLOW = 1
    AGGREGATE = 2
    PORT = 4


class GroupModCommand(enum.IntEnum):
    """ofp_group_mod_command."""

    ADD = 0
    MODIFY = 1
    DELETE = 2


class GroupType(enum.IntEnum):
    """ofp_group_type (subset: the two the data plane can express)."""

    ALL = 0      # replicate to every bucket (not used by the demo)
    SELECT = 1   # hash-select one bucket — switch-side ECMP


class PacketInReason(enum.IntEnum):
    """ofp_packet_in_reason."""

    NO_MATCH = 0
    ACTION = 1


class FlowRemovedReason(enum.IntEnum):
    """ofp_flow_removed_reason."""

    IDLE_TIMEOUT = 0
    HARD_TIMEOUT = 1
    DELETE = 2


class ErrorType(enum.IntEnum):
    """ofp_error_type (subset)."""

    HELLO_FAILED = 0
    BAD_REQUEST = 1
    BAD_ACTION = 2
    FLOW_MOD_FAILED = 3
