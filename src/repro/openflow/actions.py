"""OpenFlow actions and their wire codec.

The subset Horse's demo needs: OUTPUT (to a port, to the controller, or
FLOOD) and SET_FIELD for the occasional rewrite.  An empty action list
means drop, as in the spec; :class:`ActionDrop` exists as an explicit
marker for readability in controller code.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.netproto.addr import IPv4Address, MACAddress
from repro.openflow.constants import PortNo

ACTION_OUTPUT = 0
ACTION_SET_DL_SRC = 4
ACTION_SET_DL_DST = 5
ACTION_SET_NW_SRC = 6
ACTION_SET_NW_DST = 7
ACTION_GROUP = 22  # OF 1.1+ OFPAT_GROUP
ACTION_DROP = 0xFFFF  # local marker, never a real wire code in OF 1.0


class Action:
    """Base class for flow actions."""

    type_code: int = -1

    def encode(self) -> bytes:
        """Serialise to (type, len, body...) TLV."""
        raise NotImplementedError


@dataclass(frozen=True)
class ActionOutput(Action):
    """Forward the packet/flow out of ``port``.

    ``port`` may be a physical port number or a reserved
    :class:`~repro.openflow.constants.PortNo` value (CONTROLLER, FLOOD).
    """

    port: int
    max_len: int = 0xFFFF

    type_code = ACTION_OUTPUT

    def encode(self) -> bytes:
        return struct.pack("!HHIH2x", ACTION_OUTPUT, 12, self.port, self.max_len)

    def __str__(self) -> str:
        try:
            name = PortNo(self.port).name
        except ValueError:
            name = str(self.port)
        return f"output:{name}"


@dataclass(frozen=True)
class ActionSetField(Action):
    """Rewrite one header field (dl_src/dl_dst/nw_src/nw_dst)."""

    field: str
    value: "MACAddress | IPv4Address"

    _FIELD_CODES = {
        "dl_src": ACTION_SET_DL_SRC,
        "dl_dst": ACTION_SET_DL_DST,
        "nw_src": ACTION_SET_NW_SRC,
        "nw_dst": ACTION_SET_NW_DST,
    }

    @property
    def type_code(self) -> int:  # type: ignore[override]
        return self._FIELD_CODES[self.field]

    def encode(self) -> bytes:
        code = self._FIELD_CODES[self.field]
        if self.field.startswith("dl_"):
            body = self.value.packed() + b"\x00" * 6  # pad to 8
            return struct.pack("!HH", code, 4 + len(body)) + body
        body = self.value.packed() + b"\x00" * 4
        return struct.pack("!HH", code, 4 + len(body)) + body

    def __str__(self) -> str:
        return f"set_{self.field}:{self.value}"


@dataclass(frozen=True)
class ActionGroup(Action):
    """Send the packet/flow through a group (SELECT groups = ECMP)."""

    group_id: int

    type_code = ACTION_GROUP

    def encode(self) -> bytes:
        return struct.pack("!HHI", ACTION_GROUP, 8, self.group_id)

    def __str__(self) -> str:
        return f"group:{self.group_id}"


@dataclass(frozen=True)
class ActionDrop(Action):
    """Explicit drop marker — encodes to nothing (empty action list)."""

    type_code = ACTION_DROP

    def encode(self) -> bytes:
        return b""

    def __str__(self) -> str:
        return "drop"


def encode_actions(actions: List[Action]) -> bytes:
    """Serialise an action list to its wire form."""
    return b"".join(action.encode() for action in actions)


def decode_actions(data: bytes) -> List[Action]:
    """Parse a wire-form action list."""
    actions: List[Action] = []
    offset = 0
    while offset + 4 <= len(data):
        code, length = struct.unpack_from("!HH", data, offset)
        if length < 4 or offset + length > len(data):
            raise ValueError(f"bad action TLV at offset {offset}")
        body = data[offset + 4 : offset + length]
        if code == ACTION_OUTPUT:
            port, max_len = struct.unpack("!IH2x", body)
            actions.append(ActionOutput(port=port, max_len=max_len))
        elif code == ACTION_SET_DL_SRC:
            actions.append(ActionSetField("dl_src", MACAddress.from_bytes(body[:6])))
        elif code == ACTION_SET_DL_DST:
            actions.append(ActionSetField("dl_dst", MACAddress.from_bytes(body[:6])))
        elif code == ACTION_SET_NW_SRC:
            actions.append(ActionSetField("nw_src", IPv4Address.from_bytes(body[:4])))
        elif code == ACTION_SET_NW_DST:
            actions.append(ActionSetField("nw_dst", IPv4Address.from_bytes(body[:4])))
        elif code == ACTION_GROUP:
            (group_id,) = struct.unpack("!I", body[:4])
            actions.append(ActionGroup(group_id=group_id))
        else:
            raise ValueError(f"unknown action type {code}")
        offset += length
    if offset != len(data):
        raise ValueError("trailing bytes after action list")
    return actions


def output_ports(actions: List[Action]) -> List[int]:
    """The ports an action list outputs to (empty = drop)."""
    return [a.port for a in actions if isinstance(a, ActionOutput)]
