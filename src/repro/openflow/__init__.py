"""OpenFlow substrate: wire protocol, switch agent and controller base.

Horse's SDN support means switches speak OpenFlow to real controller
applications.  This package implements an OpenFlow 1.0-flavoured binary
protocol — real headers, real match structures, real flow-mods on the
wire — plus the two endpoints:

* :class:`~repro.openflow.switch_agent.SwitchAgent` — the datapath side,
  attached to a simulated switch; turns table misses into PACKET_IN,
  applies FLOW_MOD to the simulated flow table, answers STATS_REQUEST
  from the simulated counters;
* :class:`~repro.openflow.controller.Controller` — the controller side,
  hosting one or more applications (see :mod:`repro.controllers`).

Deviations from the OpenFlow 1.0 spec are small and documented in
:mod:`repro.openflow.messages` (no vendor extensions, no queues, ports
are 32-bit).
"""

from repro.openflow.constants import (
    OFP_VERSION,
    MsgType,
    PortNo,
    FlowModCommand,
    StatsType,
    OFP_NO_BUFFER,
)
from repro.openflow.match import Match
from repro.openflow.actions import (
    Action,
    ActionOutput,
    ActionSetField,
    ActionDrop,
    encode_actions,
    decode_actions,
)
from repro.openflow.messages import (
    OFMessage,
    Hello,
    EchoRequest,
    EchoReply,
    FeaturesRequest,
    FeaturesReply,
    PacketIn,
    PacketOut,
    FlowMod,
    FlowRemoved,
    StatsRequest,
    StatsReply,
    BarrierRequest,
    BarrierReply,
    ErrorMsg,
    decode_message,
    encode_message,
)
from repro.openflow.switch_agent import SwitchAgent
from repro.openflow.controller import Controller, ControllerApp

__all__ = [
    "OFP_VERSION",
    "MsgType",
    "PortNo",
    "FlowModCommand",
    "StatsType",
    "OFP_NO_BUFFER",
    "Match",
    "Action",
    "ActionOutput",
    "ActionSetField",
    "ActionDrop",
    "encode_actions",
    "decode_actions",
    "OFMessage",
    "Hello",
    "EchoRequest",
    "EchoReply",
    "FeaturesRequest",
    "FeaturesReply",
    "PacketIn",
    "PacketOut",
    "FlowMod",
    "FlowRemoved",
    "StatsRequest",
    "StatsReply",
    "BarrierRequest",
    "BarrierReply",
    "ErrorMsg",
    "decode_message",
    "encode_message",
    "SwitchAgent",
    "Controller",
    "ControllerApp",
]
