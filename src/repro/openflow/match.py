"""The OpenFlow match structure.

A :class:`Match` is a set of header-field constraints; ``None`` means
wildcarded.  It both matches simulated traffic (fluid flows and packet
events) and round-trips through a binary encoding closely modelled on
OF 1.0's ``ofp_match`` (a wildcard bitmap followed by fixed fields).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.netproto.addr import IPv4Address, IPv4Prefix, MACAddress
from repro.netproto.packet import FiveTuple

# Wildcard bits (set bit = field is wildcarded), mirroring ofp_flow_wildcards.
WC_IN_PORT = 1 << 0
WC_DL_SRC = 1 << 2
WC_DL_DST = 1 << 3
WC_DL_TYPE = 1 << 4
WC_NW_PROTO = 1 << 5
WC_TP_SRC = 1 << 6
WC_TP_DST = 1 << 7
# nw_src/nw_dst wildcard bit-counts live in dedicated 6-bit fields.
WC_NW_SRC_SHIFT = 8
WC_NW_DST_SHIFT = 14
WC_ALL = (
    WC_IN_PORT
    | WC_DL_SRC
    | WC_DL_DST
    | WC_DL_TYPE
    | WC_NW_PROTO
    | WC_TP_SRC
    | WC_TP_DST
    | (32 << WC_NW_SRC_SHIFT)
    | (32 << WC_NW_DST_SHIFT)
)

_MATCH_STRUCT = struct.Struct("!II6s6sHBBHH4s4s")
MATCH_LEN = _MATCH_STRUCT.size


@dataclass(frozen=True)
class Match:
    """Field constraints; ``None`` wildcards a field.

    ``nw_src``/``nw_dst`` are prefixes, so ECMP apps can match subnets
    and exact /32 host addresses with the same type.
    """

    in_port: Optional[int] = None
    dl_src: Optional[MACAddress] = None
    dl_dst: Optional[MACAddress] = None
    dl_type: Optional[int] = None
    nw_src: Optional[IPv4Prefix] = None
    nw_dst: Optional[IPv4Prefix] = None
    nw_proto: Optional[int] = None
    tp_src: Optional[int] = None
    tp_dst: Optional[int] = None

    def __post_init__(self) -> None:
        # A /0 prefix matches everything — normalise it to the wildcard
        # so semantically identical matches compare (and encode) equal;
        # OF 1.0's wildcard bit-count cannot represent /0 distinctly.
        if self.nw_src is not None and self.nw_src.length == 0:
            object.__setattr__(self, "nw_src", None)
        if self.nw_dst is not None and self.nw_dst.length == 0:
            object.__setattr__(self, "nw_dst", None)

    @classmethod
    def exact_five_tuple(
        cls, flow: FiveTuple, in_port: "int | None" = None, dl_type: int = 0x0800
    ) -> "Match":
        """An exact match on a flow's five-tuple (the SDN ECMP app uses
        these for its per-flow entries)."""
        return cls(
            in_port=in_port,
            dl_type=dl_type,
            nw_src=IPv4Prefix.from_network(flow.src_ip, 32),
            nw_dst=IPv4Prefix.from_network(flow.dst_ip, 32),
            nw_proto=flow.protocol,
            tp_src=flow.src_port,
            tp_dst=flow.dst_port,
        )

    @classmethod
    def wildcard_all(cls) -> "Match":
        """The match-everything entry (table-miss)."""
        return cls()

    def matches_five_tuple(
        self,
        flow: FiveTuple,
        in_port: "int | None" = None,
        dl_src: "MACAddress | None" = None,
        dl_dst: "MACAddress | None" = None,
    ) -> bool:
        """Whether an IPv4 five-tuple (plus ingress port) satisfies this match.

        ``dl_src``/``dl_dst`` are the MACs the flow's frames carry
        (known to the fluid walk from the end hosts).  An entry
        constrained on a MAC does *not* match when the caller cannot
        supply one — L2 entries must never capture arbitrary L3 flows.
        """
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.dl_src is not None and (dl_src is None or dl_src != self.dl_src):
            return False
        if self.dl_dst is not None and (dl_dst is None or dl_dst != self.dl_dst):
            return False
        if self.dl_type is not None and self.dl_type != 0x0800:
            return False
        if self.nw_src is not None and not self.nw_src.contains(flow.src_ip):
            return False
        if self.nw_dst is not None and not self.nw_dst.contains(flow.dst_ip):
            return False
        if self.nw_proto is not None and self.nw_proto != flow.protocol:
            return False
        if self.tp_src is not None and self.tp_src != flow.src_port:
            return False
        if self.tp_dst is not None and self.tp_dst != flow.dst_port:
            return False
        return True

    def matches_packet(self, packet, in_port: "int | None" = None) -> bool:
        """Whether a decoded :class:`~repro.netproto.packet.Packet` matches."""
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.dl_src is not None and packet.eth.src != self.dl_src:
            return False
        if self.dl_dst is not None and packet.eth.dst != self.dl_dst:
            return False
        if self.dl_type is not None and packet.eth.ethertype != self.dl_type:
            return False
        ip = packet.ip
        needs_ip = any(
            f is not None
            for f in (self.nw_src, self.nw_dst, self.nw_proto, self.tp_src, self.tp_dst)
        )
        if needs_ip and ip is None:
            return False
        if self.nw_src is not None and not self.nw_src.contains(ip.src):
            return False
        if self.nw_dst is not None and not self.nw_dst.contains(ip.dst):
            return False
        if self.nw_proto is not None and ip.protocol != self.nw_proto:
            return False
        if self.tp_src is not None or self.tp_dst is not None:
            l4 = packet.l4
            if l4 is None:
                return False
            if self.tp_src is not None and l4.src_port != self.tp_src:
                return False
            if self.tp_dst is not None and l4.dst_port != self.tp_dst:
                return False
        return True

    def is_strict_equal(self, other: "Match") -> bool:
        """Field-for-field equality, as DELETE_STRICT requires."""
        return self == other

    def subsumes(self, other: "Match") -> bool:
        """True when every flow matching ``other`` also matches ``self``.

        Used for non-strict DELETE: an entry is removed when the
        delete's match subsumes the entry's match.
        """
        def wider(mine, theirs) -> bool:
            return mine is None or mine == theirs

        scalar_ok = all(
            wider(mine, theirs)
            for mine, theirs in (
                (self.in_port, other.in_port),
                (self.dl_src, other.dl_src),
                (self.dl_dst, other.dl_dst),
                (self.dl_type, other.dl_type),
                (self.nw_proto, other.nw_proto),
                (self.tp_src, other.tp_src),
                (self.tp_dst, other.tp_dst),
            )
        )
        if not scalar_ok:
            return False
        for mine, theirs in ((self.nw_src, other.nw_src), (self.nw_dst, other.nw_dst)):
            if mine is None:
                continue
            if theirs is None or theirs.length < mine.length:
                return False
            if not mine.overlaps(theirs):
                return False
        return True

    def specificity(self) -> int:
        """Count of constrained bits — a tie-break aid for diagnostics."""
        score = 0
        for value in (
            self.in_port, self.dl_src, self.dl_dst, self.dl_type,
            self.nw_proto, self.tp_src, self.tp_dst,
        ):
            if value is not None:
                score += 8
        for prefix in (self.nw_src, self.nw_dst):
            if prefix is not None:
                score += prefix.length
        return score

    # -- wire codec --------------------------------------------------------

    def encode(self) -> bytes:
        """Serialise to the fixed-size binary ofp_match layout."""
        wildcards = 0
        if self.in_port is None:
            wildcards |= WC_IN_PORT
        if self.dl_src is None:
            wildcards |= WC_DL_SRC
        if self.dl_dst is None:
            wildcards |= WC_DL_DST
        if self.dl_type is None:
            wildcards |= WC_DL_TYPE
        if self.nw_proto is None:
            wildcards |= WC_NW_PROTO
        if self.tp_src is None:
            wildcards |= WC_TP_SRC
        if self.tp_dst is None:
            wildcards |= WC_TP_DST
        src_wild = 32 if self.nw_src is None else 32 - self.nw_src.length
        dst_wild = 32 if self.nw_dst is None else 32 - self.nw_dst.length
        wildcards |= src_wild << WC_NW_SRC_SHIFT
        wildcards |= dst_wild << WC_NW_DST_SHIFT
        return _MATCH_STRUCT.pack(
            wildcards,
            self.in_port or 0,
            (self.dl_src or MACAddress(0)).packed(),
            (self.dl_dst or MACAddress(0)).packed(),
            self.dl_type or 0,
            self.nw_proto or 0,
            0,  # pad
            self.tp_src or 0,
            self.tp_dst or 0,
            (self.nw_src.network if self.nw_src else IPv4Address(0)).packed(),
            (self.nw_dst.network if self.nw_dst else IPv4Address(0)).packed(),
        )

    @classmethod
    def decode(cls, data: bytes) -> Tuple["Match", bytes]:
        """Parse a match; returns (match, remaining bytes)."""
        if len(data) < MATCH_LEN:
            raise ValueError("truncated ofp_match")
        (
            wildcards,
            in_port,
            dl_src_raw,
            dl_dst_raw,
            dl_type,
            nw_proto,
            __,
            tp_src,
            tp_dst,
            nw_src_raw,
            nw_dst_raw,
        ) = _MATCH_STRUCT.unpack(data[:MATCH_LEN])
        src_wild = (wildcards >> WC_NW_SRC_SHIFT) & 0x3F
        dst_wild = (wildcards >> WC_NW_DST_SHIFT) & 0x3F
        match = cls(
            in_port=None if wildcards & WC_IN_PORT else in_port,
            dl_src=None if wildcards & WC_DL_SRC else MACAddress.from_bytes(dl_src_raw),
            dl_dst=None if wildcards & WC_DL_DST else MACAddress.from_bytes(dl_dst_raw),
            dl_type=None if wildcards & WC_DL_TYPE else dl_type,
            nw_src=(
                None
                if src_wild >= 32
                else IPv4Prefix.from_network(
                    IPv4Address.from_bytes(nw_src_raw), 32 - src_wild
                )
            ),
            nw_dst=(
                None
                if dst_wild >= 32
                else IPv4Prefix.from_network(
                    IPv4Address.from_bytes(nw_dst_raw), 32 - dst_wild
                )
            ),
            nw_proto=None if wildcards & WC_NW_PROTO else nw_proto,
            tp_src=None if wildcards & WC_TP_SRC else tp_src,
            tp_dst=None if wildcards & WC_TP_DST else tp_dst,
        )
        return match, data[MATCH_LEN:]

    def __str__(self) -> str:
        parts = []
        for label, value in (
            ("in_port", self.in_port),
            ("dl_src", self.dl_src),
            ("dl_dst", self.dl_dst),
            ("dl_type", hex(self.dl_type) if self.dl_type is not None else None),
            ("nw_src", self.nw_src),
            ("nw_dst", self.nw_dst),
            ("nw_proto", self.nw_proto),
            ("tp_src", self.tp_src),
            ("tp_dst", self.tp_dst),
        ):
            if value is not None:
                parts.append(f"{label}={value}")
        return "Match(" + ", ".join(parts) + ")" if parts else "Match(*)"
