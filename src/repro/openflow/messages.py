"""OpenFlow message codecs.

Every message carries the standard 8-byte header::

    version(1) | type(1) | length(2) | xid(4)

followed by a type-specific body.  The layouts follow OpenFlow 1.0
closely; deliberate deviations (all documented):

* port numbers are 32-bit everywhere (OF 1.3 style);
* no buffering — PACKET_IN always carries the full frame and
  ``buffer_id`` is always ``OFP_NO_BUFFER``;
* no queues, no vendor/experimenter messages.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import ClassVar, List, Optional, Tuple

from repro.openflow.actions import Action, decode_actions, encode_actions
from repro.openflow.constants import (
    MsgType,
    OFP_HEADER_LEN,
    OFP_NO_BUFFER,
    OFP_VERSION,
    FlowModCommand,
    GroupModCommand,
    GroupType,
    StatsType,
)
from repro.openflow.groups import Bucket
from repro.openflow.match import MATCH_LEN, Match


class OFDecodeError(ValueError):
    """Raised when bytes cannot be parsed as an OpenFlow message."""


@dataclass
class OFMessage:
    """Base class: every OpenFlow message has a type and an xid.

    ``msg_type`` is a ClassVar, not a field: each subclass pins its
    own wire type and instances never carry (or accept) it.
    """

    xid: int = 0

    msg_type: ClassVar[MsgType] = MsgType.HELLO

    def body(self) -> bytes:
        """Type-specific body bytes (empty by default)."""
        return b""

    def encode(self) -> bytes:
        """Serialise header + body."""
        payload = self.body()
        header = struct.pack(
            "!BBHI",
            OFP_VERSION,
            int(self.msg_type),
            OFP_HEADER_LEN + len(payload),
            self.xid & 0xFFFFFFFF,
        )
        return header + payload


@dataclass
class Hello(OFMessage):
    msg_type = MsgType.HELLO


@dataclass
class EchoRequest(OFMessage):
    msg_type = MsgType.ECHO_REQUEST
    data: bytes = b""

    def body(self) -> bytes:
        return self.data


@dataclass
class EchoReply(OFMessage):
    msg_type = MsgType.ECHO_REPLY
    data: bytes = b""

    def body(self) -> bytes:
        return self.data


@dataclass
class ErrorMsg(OFMessage):
    msg_type = MsgType.ERROR
    err_type: int = 0
    err_code: int = 0
    data: bytes = b""

    def body(self) -> bytes:
        return struct.pack("!HH", self.err_type, self.err_code) + self.data


@dataclass
class FeaturesRequest(OFMessage):
    msg_type = MsgType.FEATURES_REQUEST


@dataclass
class PortDesc:
    """One physical port in a FEATURES_REPLY."""

    port_no: int
    name: str = ""

    _STRUCT = struct.Struct("!I16s")

    def encode(self) -> bytes:
        return self._STRUCT.pack(self.port_no, self.name.encode()[:16])

    @classmethod
    def decode(cls, data: bytes) -> "PortDesc":
        port_no, raw_name = cls._STRUCT.unpack(data[: cls._STRUCT.size])
        return cls(port_no=port_no, name=raw_name.rstrip(b"\x00").decode())


@dataclass
class FeaturesReply(OFMessage):
    msg_type = MsgType.FEATURES_REPLY
    datapath_id: int = 0
    n_tables: int = 1
    capabilities: int = 0
    ports: List[PortDesc] = field(default_factory=list)

    def body(self) -> bytes:
        head = struct.pack(
            "!QIB3xI", self.datapath_id, 0, self.n_tables, self.capabilities
        )
        return head + b"".join(port.encode() for port in self.ports)

    @classmethod
    def decode_body(cls, xid: int, data: bytes) -> "FeaturesReply":
        datapath_id, __, n_tables, capabilities = struct.unpack_from("!QIB3xI", data)
        offset = struct.calcsize("!QIB3xI")
        ports = []
        step = PortDesc._STRUCT.size
        while offset + step <= len(data):
            ports.append(PortDesc.decode(data[offset : offset + step]))
            offset += step
        return cls(
            xid=xid,
            datapath_id=datapath_id,
            n_tables=n_tables,
            capabilities=capabilities,
            ports=ports,
        )


@dataclass
class PacketIn(OFMessage):
    msg_type = MsgType.PACKET_IN
    buffer_id: int = OFP_NO_BUFFER
    total_len: int = 0
    in_port: int = 0
    reason: int = 0
    data: bytes = b""

    def body(self) -> bytes:
        total = self.total_len or len(self.data)
        return (
            struct.pack("!IHIB1x", self.buffer_id, total, self.in_port, self.reason)
            + self.data
        )

    @classmethod
    def decode_body(cls, xid: int, data: bytes) -> "PacketIn":
        buffer_id, total_len, in_port, reason = struct.unpack_from("!IHIB1x", data)
        offset = struct.calcsize("!IHIB1x")
        return cls(
            xid=xid,
            buffer_id=buffer_id,
            total_len=total_len,
            in_port=in_port,
            reason=reason,
            data=data[offset:],
        )


@dataclass
class PacketOut(OFMessage):
    msg_type = MsgType.PACKET_OUT
    buffer_id: int = OFP_NO_BUFFER
    in_port: int = 0
    actions: List[Action] = field(default_factory=list)
    data: bytes = b""

    def body(self) -> bytes:
        wire_actions = encode_actions(self.actions)
        return (
            struct.pack("!IIH", self.buffer_id, self.in_port, len(wire_actions))
            + wire_actions
            + self.data
        )

    @classmethod
    def decode_body(cls, xid: int, data: bytes) -> "PacketOut":
        buffer_id, in_port, actions_len = struct.unpack_from("!IIH", data)
        offset = struct.calcsize("!IIH")
        actions = decode_actions(data[offset : offset + actions_len])
        return cls(
            xid=xid,
            buffer_id=buffer_id,
            in_port=in_port,
            actions=actions,
            data=data[offset + actions_len :],
        )


@dataclass
class FlowMod(OFMessage):
    msg_type = MsgType.FLOW_MOD
    match: Match = field(default_factory=Match)
    cookie: int = 0
    command: FlowModCommand = FlowModCommand.ADD
    idle_timeout: int = 0
    hard_timeout: int = 0
    priority: int = 0x8000
    buffer_id: int = OFP_NO_BUFFER
    out_port: int = 0xFFFFFFFF
    flags: int = 0
    actions: List[Action] = field(default_factory=list)

    def body(self) -> bytes:
        return (
            self.match.encode()
            + struct.pack(
                "!QHHHHIIH2x",
                self.cookie,
                int(self.command),
                self.idle_timeout,
                self.hard_timeout,
                self.priority,
                self.buffer_id,
                self.out_port,
                self.flags,
            )
            + encode_actions(self.actions)
        )

    @classmethod
    def decode_body(cls, xid: int, data: bytes) -> "FlowMod":
        match, rest = Match.decode(data)
        fixed = struct.Struct("!QHHHHIIH2x")
        (
            cookie,
            command,
            idle_timeout,
            hard_timeout,
            priority,
            buffer_id,
            out_port,
            flags,
        ) = fixed.unpack_from(rest)
        actions = decode_actions(rest[fixed.size :])
        return cls(
            xid=xid,
            match=match,
            cookie=cookie,
            command=FlowModCommand(command),
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            priority=priority,
            buffer_id=buffer_id,
            out_port=out_port,
            flags=flags,
            actions=actions,
        )


@dataclass
class GroupMod(OFMessage):
    """Create/modify/delete a group (the OF 1.1+ ECMP extension)."""

    msg_type = MsgType.GROUP_MOD
    command: GroupModCommand = GroupModCommand.ADD
    group_type: GroupType = GroupType.SELECT
    group_id: int = 0
    buckets: List[Bucket] = field(default_factory=list)

    def body(self) -> bytes:
        head = struct.pack(
            "!HB1xI", int(self.command), int(self.group_type), self.group_id
        )
        return head + b"".join(bucket.encode() for bucket in self.buckets)

    @classmethod
    def decode_body(cls, xid: int, data: bytes) -> "GroupMod":
        command, group_type, group_id = struct.unpack_from("!HB1xI", data)
        rest = data[8:]
        buckets = []
        while rest:
            bucket, rest = Bucket.decode(rest)
            buckets.append(bucket)
        return cls(
            xid=xid,
            command=GroupModCommand(command),
            group_type=GroupType(group_type),
            group_id=group_id,
            buckets=buckets,
        )


@dataclass
class FlowRemoved(OFMessage):
    msg_type = MsgType.FLOW_REMOVED
    match: Match = field(default_factory=Match)
    cookie: int = 0
    priority: int = 0x8000
    reason: int = 0
    duration_sec: float = 0.0
    packet_count: int = 0
    byte_count: int = 0

    def body(self) -> bytes:
        return self.match.encode() + struct.pack(
            "!QHB3xIQQ",
            self.cookie,
            self.priority,
            self.reason,
            int(self.duration_sec),
            self.packet_count,
            self.byte_count,
        )

    @classmethod
    def decode_body(cls, xid: int, data: bytes) -> "FlowRemoved":
        match, rest = Match.decode(data)
        cookie, priority, reason, duration, packets, bytes_ = struct.unpack_from(
            "!QHB3xIQQ", rest
        )
        return cls(
            xid=xid,
            match=match,
            cookie=cookie,
            priority=priority,
            reason=reason,
            duration_sec=float(duration),
            packet_count=packets,
            byte_count=bytes_,
        )


@dataclass
class FlowStatsEntry:
    """One flow entry in a FLOW stats reply."""

    match: Match
    priority: int = 0x8000
    duration_sec: float = 0.0
    packet_count: int = 0
    byte_count: int = 0
    cookie: int = 0

    _FIXED = struct.Struct("!HIQQQ")

    def encode(self) -> bytes:
        body = self.match.encode() + self._FIXED.pack(
            self.priority,
            int(self.duration_sec),
            self.cookie,
            self.packet_count,
            self.byte_count,
        )
        return struct.pack("!H", 2 + len(body)) + body

    @classmethod
    def decode(cls, data: bytes) -> Tuple["FlowStatsEntry", bytes]:
        (length,) = struct.unpack_from("!H", data)
        if length < 2 or length > len(data):
            raise OFDecodeError("bad flow stats entry length")
        body = data[2:length]
        match, rest = Match.decode(body)
        priority, duration, cookie, packets, bytes_ = cls._FIXED.unpack_from(rest)
        entry = cls(
            match=match,
            priority=priority,
            duration_sec=float(duration),
            cookie=cookie,
            packet_count=packets,
            byte_count=bytes_,
        )
        return entry, data[length:]


@dataclass
class PortStatsEntry:
    """One port in a PORT stats reply."""

    port_no: int
    rx_packets: int = 0
    tx_packets: int = 0
    rx_bytes: int = 0
    tx_bytes: int = 0

    _STRUCT = struct.Struct("!IQQQQ")

    def encode(self) -> bytes:
        return self._STRUCT.pack(
            self.port_no, self.rx_packets, self.tx_packets, self.rx_bytes, self.tx_bytes
        )

    @classmethod
    def decode(cls, data: bytes) -> Tuple["PortStatsEntry", bytes]:
        values = cls._STRUCT.unpack_from(data)
        return cls(*values), data[cls._STRUCT.size :]


@dataclass
class AggregateStats:
    """The single body of an AGGREGATE stats reply."""

    packet_count: int = 0
    byte_count: int = 0
    flow_count: int = 0

    _STRUCT = struct.Struct("!QQI4x")

    def encode(self) -> bytes:
        return self._STRUCT.pack(self.packet_count, self.byte_count, self.flow_count)

    @classmethod
    def decode(cls, data: bytes) -> "AggregateStats":
        packets, bytes_, flows = cls._STRUCT.unpack_from(data)
        return cls(packet_count=packets, byte_count=bytes_, flow_count=flows)


@dataclass
class StatsRequest(OFMessage):
    msg_type = MsgType.STATS_REQUEST
    stats_type: StatsType = StatsType.FLOW
    match: Match = field(default_factory=Match)
    port_no: int = 0xFFFFFFFF  # ANY, for PORT requests

    def body(self) -> bytes:
        head = struct.pack("!HH", int(self.stats_type), 0)
        if self.stats_type in (StatsType.FLOW, StatsType.AGGREGATE):
            return head + self.match.encode()
        return head + struct.pack("!I", self.port_no)

    @classmethod
    def decode_body(cls, xid: int, data: bytes) -> "StatsRequest":
        stats_type_raw, __ = struct.unpack_from("!HH", data)
        stats_type = StatsType(stats_type_raw)
        rest = data[4:]
        if stats_type in (StatsType.FLOW, StatsType.AGGREGATE):
            match, __ = Match.decode(rest)
            return cls(xid=xid, stats_type=stats_type, match=match)
        (port_no,) = struct.unpack_from("!I", rest)
        return cls(xid=xid, stats_type=stats_type, port_no=port_no)


@dataclass
class StatsReply(OFMessage):
    msg_type = MsgType.STATS_REPLY
    stats_type: StatsType = StatsType.FLOW
    flow_stats: List[FlowStatsEntry] = field(default_factory=list)
    port_stats: List[PortStatsEntry] = field(default_factory=list)
    aggregate: Optional[AggregateStats] = None

    def body(self) -> bytes:
        head = struct.pack("!HH", int(self.stats_type), 0)
        if self.stats_type is StatsType.FLOW:
            return head + b"".join(entry.encode() for entry in self.flow_stats)
        if self.stats_type is StatsType.PORT:
            return head + b"".join(entry.encode() for entry in self.port_stats)
        return head + (self.aggregate or AggregateStats()).encode()

    @classmethod
    def decode_body(cls, xid: int, data: bytes) -> "StatsReply":
        stats_type_raw, __ = struct.unpack_from("!HH", data)
        stats_type = StatsType(stats_type_raw)
        rest = data[4:]
        reply = cls(xid=xid, stats_type=stats_type)
        if stats_type is StatsType.FLOW:
            while rest:
                entry, rest = FlowStatsEntry.decode(rest)
                reply.flow_stats.append(entry)
        elif stats_type is StatsType.PORT:
            while rest:
                entry, rest = PortStatsEntry.decode(rest)
                reply.port_stats.append(entry)
        else:
            reply.aggregate = AggregateStats.decode(rest)
        return reply


@dataclass
class BarrierRequest(OFMessage):
    msg_type = MsgType.BARRIER_REQUEST


@dataclass
class BarrierReply(OFMessage):
    msg_type = MsgType.BARRIER_REPLY


_SIMPLE_DECODERS = {
    MsgType.HELLO: Hello,
    MsgType.FEATURES_REQUEST: FeaturesRequest,
    MsgType.BARRIER_REQUEST: BarrierRequest,
    MsgType.BARRIER_REPLY: BarrierReply,
}

_BODY_DECODERS = {
    MsgType.FEATURES_REPLY: FeaturesReply.decode_body,
    MsgType.PACKET_IN: PacketIn.decode_body,
    MsgType.PACKET_OUT: PacketOut.decode_body,
    MsgType.FLOW_MOD: FlowMod.decode_body,
    MsgType.GROUP_MOD: GroupMod.decode_body,
    MsgType.FLOW_REMOVED: FlowRemoved.decode_body,
    MsgType.STATS_REQUEST: StatsRequest.decode_body,
    MsgType.STATS_REPLY: StatsReply.decode_body,
}


def encode_message(message: OFMessage) -> bytes:
    """Serialise any OpenFlow message (alias for ``message.encode()``)."""
    return message.encode()


def decode_message(data: bytes) -> OFMessage:
    """Parse one OpenFlow message from ``data`` (must be exactly one)."""
    message, rest = decode_message_stream(data)
    if rest:
        raise OFDecodeError(f"{len(rest)} trailing bytes after message")
    return message


def decode_message_stream(data: bytes) -> Tuple[OFMessage, bytes]:
    """Parse the first message from a byte stream; returns (msg, rest).

    Control channels deliver whole sends, but a sender may batch
    multiple messages in one write — the switch agent and controller
    both loop over this.
    """
    if len(data) < OFP_HEADER_LEN:
        raise OFDecodeError("truncated OpenFlow header")
    version, type_raw, length, xid = struct.unpack_from("!BBHI", data)
    if version != OFP_VERSION:
        raise OFDecodeError(f"unsupported OpenFlow version {version}")
    if length < OFP_HEADER_LEN or length > len(data):
        raise OFDecodeError(f"bad OpenFlow length {length}")
    try:
        msg_type = MsgType(type_raw)
    except ValueError:
        raise OFDecodeError(f"unknown OpenFlow type {type_raw}") from None
    body = data[OFP_HEADER_LEN:length]
    rest = data[length:]

    if msg_type in _SIMPLE_DECODERS:
        return _SIMPLE_DECODERS[msg_type](xid=xid), rest
    if msg_type is MsgType.ECHO_REQUEST:
        return EchoRequest(xid=xid, data=body), rest
    if msg_type is MsgType.ECHO_REPLY:
        return EchoReply(xid=xid, data=body), rest
    if msg_type is MsgType.ERROR:
        err_type, err_code = struct.unpack_from("!HH", body)
        return ErrorMsg(xid=xid, err_type=err_type, err_code=err_code, data=body[4:]), rest
    decoder = _BODY_DECODERS.get(msg_type)
    if decoder is None:
        raise OFDecodeError(f"no decoder for {msg_type.name}")
    return decoder(xid, body), rest
