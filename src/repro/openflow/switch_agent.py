"""The datapath-side OpenFlow endpoint.

A :class:`SwitchAgent` attaches to a simulated switch and terminates
its control channel: it answers the controller's handshake, applies
FLOW_MODs to the simulated flow table, resolves PACKET_OUTs into
transmissions, serves statistics from the fluid counters and raises
PACKET_INs on table misses.

Every byte that crosses the channel is a real encoded OpenFlow message
— the Connection Manager sees genuine control-plane traffic, which is
what drives the hybrid clock into FTI mode.
"""

from __future__ import annotations

from typing import Any, List, Optional, TYPE_CHECKING

from repro.core.errors import ControlPlaneError
from repro.netproto.packet import Packet
from repro.openflow.actions import ActionOutput
from repro.openflow.constants import (
    FlowModCommand,
    GroupModCommand,
    MsgType,
    PortNo,
    StatsType,
)
from repro.openflow.groups import Group
from repro.openflow.match import Match
from repro.openflow.messages import (
    AggregateStats,
    BarrierReply,
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    FlowStatsEntry,
    GroupMod,
    Hello,
    OFMessage,
    PacketIn,
    PacketOut,
    PortDesc,
    PortStatsEntry,
    StatsReply,
    StatsRequest,
    decode_message_stream,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.connection_manager import ControlChannel
    from repro.core.simulation import Simulation
    from repro.dataplane.switch import Switch


class SwitchAgent:
    """Bridges one simulated switch to its OpenFlow controller."""

    def __init__(self, switch: "Switch"):
        self.switch = switch
        self.name = f"agent-{switch.name}"
        self.channel: Optional["ControlChannel"] = None
        self.sim: Optional["Simulation"] = None
        self.connected = False
        self.packet_ins_sent = 0
        self.flow_mods_applied = 0
        self._xid = 0
        switch.agent = self

    # -- lifecycle -----------------------------------------------------------

    def start(self, sim: "Simulation") -> None:
        """Process hook: remember the simulation."""
        self.sim = sim

    def bind_channel(self, channel: "ControlChannel") -> None:
        """Attach the control channel to the controller."""
        self.channel = channel

    def tick(self, now: float) -> None:
        """Periodic upkeep: expire timed-out flow entries."""
        expired = self.switch.table.expire(now)
        for entry in expired:
            self._send(
                FlowRemoved(
                    match=entry.match,
                    priority=entry.priority,
                    cookie=entry.cookie,
                    duration_sec=entry.duration(now),
                    packet_count=entry.packet_count,
                    byte_count=int(entry.byte_count),
                )
            )
        if expired and self.sim is not None and self.sim.network is not None:
            self.sim.network.invalidate_routing()

    # -- channel input ----------------------------------------------------------

    def receive(self, channel: "ControlChannel", data: bytes, metadata: Any) -> None:
        """Handle controller -> switch bytes (possibly several messages)."""
        rest = data
        while rest:
            message, rest = decode_message_stream(rest)
            self._dispatch(message)

    def _dispatch(self, message: OFMessage) -> None:
        if isinstance(message, Hello):
            self._send(Hello(xid=message.xid))
        elif isinstance(message, FeaturesRequest):
            self._send(self._features_reply(message.xid))
            self.connected = True
        elif isinstance(message, EchoRequest):
            self._send(EchoReply(xid=message.xid, data=message.data))
        elif isinstance(message, FlowMod):
            self._apply_flow_mod(message)
        elif isinstance(message, GroupMod):
            self._apply_group_mod(message)
        elif isinstance(message, PacketOut):
            self._apply_packet_out(message)
        elif isinstance(message, StatsRequest):
            self._send(self._stats_reply(message))
        elif isinstance(message, BarrierRequest):
            self._send(BarrierReply(xid=message.xid))
        else:
            self._send(
                ErrorMsg(xid=message.xid, err_type=1, err_code=0,
                         data=type(message).__name__.encode())
            )

    # -- message handlers -----------------------------------------------------------

    def _features_reply(self, xid: int) -> FeaturesReply:
        ports = [
            PortDesc(port_no=number, name=f"{self.switch.name}-eth{number}")
            for number in sorted(self.switch.ports)
        ]
        return FeaturesReply(
            xid=xid, datapath_id=self.switch.dpid, n_tables=1, ports=ports
        )

    def _apply_flow_mod(self, message: FlowMod) -> None:
        # Imported here, not at module top: dataplane.flowtable needs
        # openflow.actions, so a top-level import would be circular.
        from repro.dataplane.flowtable import FlowEntry

        now = self._now()
        table = self.switch.table
        if message.command is FlowModCommand.ADD:
            table.add(
                FlowEntry(
                    match=message.match,
                    actions=list(message.actions),
                    priority=message.priority,
                    cookie=message.cookie,
                    idle_timeout=message.idle_timeout,
                    hard_timeout=message.hard_timeout,
                    installed_at=now,
                    last_used_at=now,
                )
            )
        elif message.command in (FlowModCommand.MODIFY, FlowModCommand.MODIFY_STRICT):
            strict = message.command is FlowModCommand.MODIFY_STRICT
            touched = False
            for entry in self.switch.table.entries():
                hit = (
                    entry.match.is_strict_equal(message.match)
                    and entry.priority == message.priority
                    if strict
                    else message.match.subsumes(entry.match)
                )
                if hit:
                    entry.actions = list(message.actions)
                    touched = True
            if not touched:  # MODIFY with no match behaves like ADD
                self._apply_flow_mod(
                    FlowMod(
                        xid=message.xid, match=message.match,
                        command=FlowModCommand.ADD, priority=message.priority,
                        idle_timeout=message.idle_timeout,
                        hard_timeout=message.hard_timeout,
                        cookie=message.cookie, actions=list(message.actions),
                    )
                )
                return
        elif message.command in (FlowModCommand.DELETE, FlowModCommand.DELETE_STRICT):
            strict = message.command is FlowModCommand.DELETE_STRICT
            out_port = None if message.out_port == 0xFFFFFFFF else message.out_port
            table.delete(
                message.match, strict=strict,
                priority=message.priority if strict else None,
                out_port=out_port,
            )
        else:  # pragma: no cover - enum is exhaustive
            raise ControlPlaneError(f"unknown flow-mod command {message.command}")
        self.flow_mods_applied += 1
        if self.sim is not None:
            self.sim.cm.record_flow_mod()

    def _apply_group_mod(self, message: GroupMod) -> None:
        groups = self.switch.groups
        try:
            if message.command is GroupModCommand.ADD:
                groups.add(Group(
                    group_id=message.group_id,
                    group_type=message.group_type,
                    buckets=tuple(message.buckets),
                ))
            elif message.command is GroupModCommand.MODIFY:
                groups.modify(Group(
                    group_id=message.group_id,
                    group_type=message.group_type,
                    buckets=tuple(message.buckets),
                ))
            else:
                groups.delete(message.group_id)
        except Exception:
            self._send(ErrorMsg(xid=message.xid, err_type=3, err_code=0))
            return
        if self.sim is not None:
            self.sim.cm.record_flow_mod()

    def _apply_packet_out(self, message: PacketOut) -> None:
        if not message.data or self.sim is None or self.sim.network is None:
            return
        packet = Packet.decode(message.data)
        in_port = message.in_port
        outputs: List = []
        for action in message.actions:
            if not isinstance(action, ActionOutput):
                continue
            if action.port in (PortNo.FLOOD, PortNo.ALL):
                outputs.extend(
                    (number, packet) for number in self.switch.flood_ports(in_port)
                )
            elif action.port == PortNo.IN_PORT:
                outputs.append((in_port, packet))
            elif action.port in self.switch.ports:
                outputs.append((action.port, packet))
        self.sim.network.transmit(self.switch, outputs)

    def _stats_reply(self, request: StatsRequest) -> StatsReply:
        now = self._now()
        if self.sim is not None and self.sim.network is not None:
            # Counters must be current as of "now" for Hedera's demand
            # estimation to see fresh byte counts.
            self.sim.network.accrue(now)
        if request.stats_type is StatsType.FLOW:
            entries = [
                FlowStatsEntry(
                    match=entry.match,
                    priority=entry.priority,
                    duration_sec=entry.duration(now),
                    packet_count=entry.packet_count,
                    byte_count=int(entry.byte_count),
                    cookie=entry.cookie,
                )
                for entry in self.switch.table.entries()
                if request.match.subsumes(entry.match)
            ]
            return StatsReply(xid=request.xid, stats_type=StatsType.FLOW,
                              flow_stats=entries)
        if request.stats_type is StatsType.PORT:
            wanted = request.port_no
            ports = [
                PortStatsEntry(
                    port_no=port.number,
                    rx_packets=port.rx_packets,
                    tx_packets=port.tx_packets,
                    rx_bytes=int(port.rx_bytes),
                    tx_bytes=int(port.tx_bytes),
                )
                for number, port in sorted(self.switch.ports.items())
                if wanted in (0xFFFFFFFF, number)
            ]
            return StatsReply(xid=request.xid, stats_type=StatsType.PORT,
                              port_stats=ports)
        total_bytes = sum(e.byte_count for e in self.switch.table.entries())
        total_packets = sum(e.packet_count for e in self.switch.table.entries())
        return StatsReply(
            xid=request.xid,
            stats_type=StatsType.AGGREGATE,
            aggregate=AggregateStats(
                packet_count=total_packets,
                byte_count=int(total_bytes),
                flow_count=len(self.switch.table),
            ),
        )

    # -- datapath -> controller ---------------------------------------------------------

    def packet_in(self, in_port: int, packet: Packet, now: float) -> None:
        """Raise a PACKET_IN for a table miss."""
        if self.channel is None:
            return
        data = packet.encode()
        self.packet_ins_sent += 1
        self._send(
            PacketIn(
                xid=self._next_xid(),
                total_len=packet.size or len(data),
                in_port=in_port,
                reason=0,
                data=data,
            )
        )

    # -- plumbing ----------------------------------------------------------------------

    def _send(self, message: OFMessage) -> None:
        if self.channel is None:
            return
        self.channel.send(self, message.encode())

    def _next_xid(self) -> int:
        self._xid += 1
        return self._xid

    def _now(self) -> float:
        return self.sim.clock.now if self.sim is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SwitchAgent {self.name} connected={self.connected}>"
