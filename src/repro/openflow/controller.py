"""The controller-side OpenFlow endpoint and its application model.

A :class:`Controller` is an emulated control-plane process hosting one
or more :class:`ControllerApp` instances (the paper's "Applications"
box in Figure 2).  It performs the OpenFlow handshake with every
connected switch agent and dispatches events to the apps, Ryu-style:

* ``on_switch_join(dp)`` — handshake completed;
* ``on_packet_in(dp, msg)`` — table miss somewhere;
* ``on_stats_reply(dp, msg)`` — statistics arrived (Hedera's food);
* ``on_flow_removed(dp, msg)`` — an entry expired.

``dp`` is a :class:`Datapath` handle with convenience senders
(``flow_mod``, ``packet_out``, ``request_flow_stats`` ...).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.openflow.actions import Action
from repro.openflow.constants import FlowModCommand, MsgType, OFP_NO_BUFFER, StatsType
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierRequest,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    Hello,
    OFMessage,
    PacketIn,
    PacketOut,
    StatsReply,
    StatsRequest,
    decode_message_stream,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.connection_manager import ControlChannel
    from repro.core.simulation import Simulation


class Datapath:
    """The controller's handle on one connected switch."""

    def __init__(self, controller: "Controller", channel: "ControlChannel",
                 name: str):
        self.controller = controller
        self.channel = channel
        self.name = name  # switch name, for logs and app convenience
        self.dpid: Optional[int] = None
        self.ports: List[int] = []
        self.ready = False

    # -- senders ---------------------------------------------------------------

    def send(self, message: OFMessage) -> None:
        """Send a raw OpenFlow message to this switch."""
        self.channel.send(self.controller, message.encode())

    def flow_mod(
        self,
        match: Match,
        actions: List[Action],
        priority: int = 0x8000,
        command: FlowModCommand = FlowModCommand.ADD,
        idle_timeout: int = 0,
        hard_timeout: int = 0,
        cookie: int = 0,
    ) -> None:
        """Install/modify/delete a flow entry."""
        self.send(
            FlowMod(
                xid=self.controller.next_xid(),
                match=match,
                actions=actions,
                priority=priority,
                command=command,
                idle_timeout=idle_timeout,
                hard_timeout=hard_timeout,
                cookie=cookie,
            )
        )

    def packet_out(self, data: bytes, actions: List[Action],
                   in_port: int = 0) -> None:
        """Inject a packet into the switch's data plane."""
        self.send(
            PacketOut(
                xid=self.controller.next_xid(),
                buffer_id=OFP_NO_BUFFER,
                in_port=in_port,
                actions=actions,
                data=data,
            )
        )

    def group_mod(self, group_id: int, buckets, command=None,
                  group_type=None) -> None:
        """Create/modify/delete a SELECT group (switch-side ECMP)."""
        from repro.openflow.constants import GroupModCommand, GroupType
        from repro.openflow.messages import GroupMod

        self.send(
            GroupMod(
                xid=self.controller.next_xid(),
                command=command if command is not None else GroupModCommand.ADD,
                group_type=group_type if group_type is not None else GroupType.SELECT,
                group_id=group_id,
                buckets=list(buckets),
            )
        )

    def request_flow_stats(self, match: "Match | None" = None) -> int:
        """Ask for flow statistics; returns the request xid."""
        xid = self.controller.next_xid()
        self.send(StatsRequest(xid=xid, stats_type=StatsType.FLOW,
                               match=match or Match()))
        return xid

    def request_port_stats(self, port_no: int = 0xFFFFFFFF) -> int:
        """Ask for port statistics; returns the request xid."""
        xid = self.controller.next_xid()
        self.send(StatsRequest(xid=xid, stats_type=StatsType.PORT,
                               port_no=port_no))
        return xid

    def barrier(self) -> None:
        """Send a barrier request."""
        self.send(BarrierRequest(xid=self.controller.next_xid()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Datapath {self.name} dpid={self.dpid} ready={self.ready}>"


class ControllerApp:
    """Base class for controller applications."""

    name = "app"

    def __init__(self) -> None:
        self.controller: Optional["Controller"] = None

    # Lifecycle -----------------------------------------------------------------
    def setup(self, controller: "Controller") -> None:
        """Called when the app is added to a controller."""
        self.controller = controller

    def on_start(self, sim: "Simulation") -> None:
        """Called when the experiment starts (arm timers here)."""

    # Events ---------------------------------------------------------------------
    def on_switch_join(self, dp: Datapath) -> None:
        """A switch finished its handshake."""

    def on_packet_in(self, dp: Datapath, message: PacketIn) -> None:
        """A PACKET_IN arrived."""

    def on_stats_reply(self, dp: Datapath, message: StatsReply) -> None:
        """A STATS_REPLY arrived."""

    def on_flow_removed(self, dp: Datapath, message: FlowRemoved) -> None:
        """A FLOW_REMOVED arrived."""


class Controller:
    """An emulated SDN controller process."""

    def __init__(self, name: str = "controller"):
        self.name = name
        self.sim: Optional["Simulation"] = None
        self.apps: List[ControllerApp] = []
        self.datapaths: Dict[int, Datapath] = {}  # keyed by channel id
        self._xid = 0
        self.packet_ins = 0
        self.stats_replies = 0

    # -- wiring ---------------------------------------------------------------------

    def add_app(self, app: ControllerApp) -> ControllerApp:
        """Host an application on this controller."""
        self.apps.append(app)
        app.setup(self)
        return app

    def bind_channel(self, channel: "ControlChannel", switch_name: str) -> Datapath:
        """Register the channel to one switch agent (called by the API)."""
        datapath = Datapath(self, channel, switch_name)
        self.datapaths[channel.id] = datapath
        return datapath

    def start(self, sim: "Simulation") -> None:
        """Process hook: start handshakes and app timers."""
        self.sim = sim
        for datapath in self.datapaths.values():
            datapath.send(Hello(xid=self.next_xid()))
            datapath.send(FeaturesRequest(xid=self.next_xid()))
        for app in self.apps:
            app.on_start(sim)

    # -- channel input -----------------------------------------------------------------

    def receive(self, channel: "ControlChannel", data: bytes, metadata: Any) -> None:
        """Handle switch -> controller bytes."""
        datapath = self.datapaths.get(channel.id)
        if datapath is None:
            return
        rest = data
        while rest:
            message, rest = decode_message_stream(rest)
            self._dispatch(datapath, message)

    def _dispatch(self, dp: Datapath, message: OFMessage) -> None:
        if isinstance(message, Hello):
            return
        if isinstance(message, FeaturesReply):
            dp.dpid = message.datapath_id
            dp.ports = [port.port_no for port in message.ports]
            dp.ready = True
            for app in self.apps:
                app.on_switch_join(dp)
        elif isinstance(message, PacketIn):
            self.packet_ins += 1
            for app in self.apps:
                app.on_packet_in(dp, message)
        elif isinstance(message, StatsReply):
            self.stats_replies += 1
            for app in self.apps:
                app.on_stats_reply(dp, message)
        elif isinstance(message, FlowRemoved):
            for app in self.apps:
                app.on_flow_removed(dp, message)
        elif isinstance(message, EchoRequest):
            dp.send(EchoReply(xid=message.xid, data=message.data))
        elif isinstance(message, ErrorMsg):
            # Errors are recorded but not fatal; apps may inspect them.
            pass

    # -- helpers ------------------------------------------------------------------------

    def next_xid(self) -> int:
        """Monotonic transaction id."""
        self._xid += 1
        return self._xid

    def ready_datapaths(self) -> List[Datapath]:
        """Datapaths that completed the handshake, sorted by name."""
        return sorted(
            (dp for dp in self.datapaths.values() if dp.ready),
            key=lambda dp: dp.name,
        )

    def datapath_by_name(self, switch_name: str) -> Optional[Datapath]:
        """Find a datapath by its switch's name."""
        for datapath in self.datapaths.values():
            if datapath.name == switch_name:
                return datapath
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Controller {self.name} dps={len(self.datapaths)} apps={len(self.apps)}>"
