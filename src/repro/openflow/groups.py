"""OpenFlow group table: switch-side ECMP via SELECT groups.

OpenFlow 1.1+ lets a flow entry point at a *group*; a SELECT group
hashes each flow onto one of its action buckets.  This is how real
fabrics do proactive ECMP — a handful of prefix entries plus one
group, instead of one exact-match entry per flow — and it is the
extension this reproduction adds beyond the paper's OF 1.0 feature
set (the paper lists programmable-switch support as future work).

Bucket selection uses the flow's five-tuple hash with a per-switch
seed, matching the data plane's router ECMP behaviour.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import DataPlaneError
from repro.netproto.hashing import ecmp_hash, five_tuple_hash
from repro.netproto.packet import FiveTuple
from repro.openflow.actions import Action, decode_actions, encode_actions
from repro.openflow.constants import GroupType


@dataclass(frozen=True)
class Bucket:
    """One action bucket of a group."""

    actions: Tuple[Action, ...]

    def encode(self) -> bytes:
        wire_actions = encode_actions(list(self.actions))
        return struct.pack("!H2x", 4 + len(wire_actions)) + wire_actions

    @classmethod
    def decode(cls, data: bytes) -> Tuple["Bucket", bytes]:
        if len(data) < 4:
            raise ValueError("truncated bucket")
        (length,) = struct.unpack_from("!H", data)
        if length < 4 or length > len(data):
            raise ValueError(f"bad bucket length {length}")
        actions = decode_actions(data[4:length])
        return cls(actions=tuple(actions)), data[length:]


@dataclass(frozen=True)
class Group:
    """A group table entry."""

    group_id: int
    group_type: GroupType = GroupType.SELECT
    buckets: Tuple[Bucket, ...] = ()

    def select_bucket(self, flow: FiveTuple, seed: int = 0) -> Optional[Bucket]:
        """The bucket a SELECT group hashes this flow onto."""
        if not self.buckets:
            return None
        if self.group_type is GroupType.SELECT:
            index = ecmp_hash(five_tuple_hash(flow, seed=seed), len(self.buckets))
            return self.buckets[index]
        return self.buckets[0]


class GroupTable:
    """The per-switch group table."""

    def __init__(self) -> None:
        self._groups: Dict[int, Group] = {}
        self.version = 0

    def add(self, group: Group) -> None:
        """Insert a group; re-adding an existing id is an error (spec)."""
        if group.group_id in self._groups:
            raise DataPlaneError(f"group {group.group_id} already exists")
        self._groups[group.group_id] = group
        self.version += 1

    def modify(self, group: Group) -> None:
        """Replace an existing group's type/buckets."""
        if group.group_id not in self._groups:
            raise DataPlaneError(f"group {group.group_id} does not exist")
        self._groups[group.group_id] = group
        self.version += 1

    def delete(self, group_id: int) -> bool:
        """Remove a group; True when it existed."""
        removed = self._groups.pop(group_id, None) is not None
        if removed:
            self.version += 1
        return removed

    def get(self, group_id: int) -> Optional[Group]:
        """Look a group up by id."""
        return self._groups.get(group_id)

    def __len__(self) -> int:
        return len(self._groups)

    def __contains__(self, group_id: int) -> bool:
        return group_id in self._groups
