"""Command-line interface: run the paper's experiments from a shell.

Subcommands:

* ``demo``     — the full demonstration (three TE schemes) on one
  fat-tree size; prints the timing and throughput table.
* ``fig1``     — the two-router BGP scenario; prints the mode-transition
  timeline of Figure 1.
* ``fig3``     — the Horse-vs-baseline execution-time comparison for a
  list of fat-tree sizes.
* ``scenario`` — the fault-injection scenario engine: ``scenario run``
  executes one generated (or JSON-loaded) scenario, ``scenario sweep``
  fans a seeded campaign out across worker processes.  Any sweep line
  can be reproduced bit-for-bit by ``scenario run`` with the same
  generator options and that line's seed.
* ``campaign`` — the durable half: ``campaign run`` streams a seeded
  sweep into an on-disk result store (JSONL + index sidecar),
  ``campaign resume`` finishes an interrupted sweep (only the
  missing (spec, seed) pairs run), ``campaign report`` prints
  percentile rollups (optionally exporting CSV), ``campaign check``
  exits non-zero when any SLO failed — a sweep as a regression gate —
  and ``campaign diff`` A/B-compares two stores record-for-record
  (non-zero exit on any divergence).  ``campaign run --fleet N``
  swaps the local pool for a worker fleet (in-process threads, local
  processes, or TCP workers).
* ``fleet``    — distributed fan-out: ``fleet serve`` coordinates a
  sweep over a length-prefixed JSON-over-TCP protocol, ``fleet join
  host:port`` turns any box into a worker, ``fleet status`` snapshots
  a running coordinator.  Chunks are leased with liveness heartbeats
  and stolen back from dead or silent workers (bound a run against a
  live-but-stuck worker with ``--wait-timeout``); the merged store is
  record-for-record identical to a single-box run.  ``fleet bench``
  pushes synthetic records through the protocol to measure framing +
  ingest + merge overhead in isolation.
* ``store``    — maintenance: ``store merge`` folds shard stores into
  one canonical store, dedup by (spec_hash, seed); ``store convert``
  rewrites a store in the other on-disk format (JSONL or columnar
  segments) preserving records and canonical digest bit-for-bit.
  Stores auto-detect their format on open; ``--store-format
  columnar`` on the store-creating commands (``campaign run``,
  ``fleet serve``, ``search run``, ``store merge``) picks the
  numpy-backed columnar layout for million-record campaigns.
* ``trace``    — telemetry: ``trace run`` executes one scenario with
  the span tracer armed and exports the timeline as Chrome
  trace-event JSON (drop it on https://ui.perfetto.dev) plus a text
  top-spans report; ``REPRO_OBS=1`` arms the tracer for *any*
  subcommand without changing results — spans and metrics live
  outside every fingerprint.
* ``search``   — adversarial scenario search: ``search run`` explores
  a scenario family (seeded random baseline, or an evolutionary loop
  that mutates the worst specs found — shifting injection times,
  swapping failed links within their shared-risk group, stretching
  flaps, scaling load) to maximize an objective (convergence time,
  recovery time, delivered shortfall, or any metric expression);
  ``search resume`` finishes a killed search exactly (the store *is*
  the search state), ``search report`` prints the ranked leaderboard
  of worst cases — every entry replayable verbatim via ``repro
  scenario run --spec`` on the file ``--save-worst`` writes.

SLO assertions (``--slo``) ride the specs and are evaluated inside
the runner, e.g. ``--slo converged_within=20 --slo
min_delivered_fraction=0.9 --slo "expr=recomputations < 500"``.

Examples::

    python -m repro.cli demo --k 4 --duration 20
    python -m repro.cli fig1
    python -m repro.cli fig3 --sizes 4,6 --scale 0.02
    python -m repro.cli scenario sweep --count 20 --workers 4
    python -m repro.cli scenario run --seed 7 --pattern flap-storm
    python -m repro.cli campaign run --store sweep/ --count 200 \
        --workers 8 --slo converged_within=30
    python -m repro.cli campaign resume --store sweep/ --count 200 \
        --workers 8 --slo converged_within=30
    python -m repro.cli campaign report --store sweep/ --csv sweep.csv
    python -m repro.cli campaign check --store sweep/
    python -m repro.cli campaign run --store sweep/ --count 200 --fleet 4
    python -m repro.cli campaign diff baseline_store/ candidate_store/
    python -m repro.cli fleet serve --store sweep/ --port 7654 --count 1000
    python -m repro.cli fleet join otherbox:7654
    python -m repro.cli fleet status otherbox:7654
    python -m repro.cli store merge merged/ shard_a/ shard_b/
    python -m repro.cli store convert sweep/ sweep_col/ --to columnar
    python -m repro.cli fleet bench --records 5000 --workers 4
    python -m repro.cli search run --store hunt/ --budget 32 \
        --pattern flap-storm --objective delivered_shortfall
    python -m repro.cli search resume --store hunt/
    python -m repro.cli search report --store hunt/ --save-worst worst.json
    python -m repro.cli scenario run --spec worst.json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.api.demo import DemoSettings, run_full_demonstration

    settings = DemoSettings(
        k=args.k,
        duration=args.duration,
        rate_bps=args.rate_gbps * 1e9,
        seed=args.seed,
    )
    report = run_full_demonstration(settings)
    hosts = args.k ** 3 // 4
    print(f"fat-tree k={args.k} ({hosts} hosts), "
          f"{args.duration:.0f}s per scheme, seed {args.seed}")
    print(f"{'scheme':<10} {'wall_s':>8} {'delivered':>10} {'agg_gbps':>9}")
    for name, result in report.results.items():
        print(f"{name:<10} {result.total_wall_seconds:>8.3f} "
              f"{result.flows_delivered:>4}/{result.flows_total:<5} "
              f"{result.mean_aggregate_rx_bps / 1e9:>9.2f}")
    print(f"consolidated wall time: {report.total_wall_seconds:.3f}s")
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.api import Experiment, setup_bgp_for_routers
    from repro.core import SimulationConfig

    exp = Experiment("fig1", config=SimulationConfig(
        fti_increment=args.fti_increment,
        des_fallback_timeout=args.des_timeout,
    ))
    r1 = exp.add_router("r1", router_id="1.1.1.1")
    r2 = exp.add_router("r2", router_id="2.2.2.2")
    h1 = exp.add_host("h1", "10.1.0.10")
    h2 = exp.add_host("h2", "10.2.0.10")
    exp.add_link(h1, r1)
    exp.add_link(h2, r2)
    exp.add_link(r1, r2)
    daemons = setup_bgp_for_routers(exp, asn_map={"r1": 65001, "r2": 65002})
    exp.add_flow("h1", "h2", rate_bps=5e8, start_time=0.0,
                 duration=args.horizon - 1.0)
    result = exp.run(until=args.horizon)
    print(result.report.summary())
    print(f"sessions established: "
          f"{all(d.all_established() for d in daemons.values())}")
    print("mode transitions:")
    for line in exp.sim.mode_transition_log():
        print(f"  {line}")
    in_modes = exp.sim.clock.time_in_modes()
    print(f"time in DES {in_modes['des']:.2f}s / FTI {in_modes['fti']:.2f}s")
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from repro.api.demo import DemoSettings, run_full_demonstration
    from repro.baseline import PacketLevelEmulator
    from repro.topology import FatTreeTopo
    from repro.traffic import permutation_pairs

    sizes = [int(part) for part in args.sizes.split(",") if part.strip()]
    print(f"{'k':>2} {'horse_s':>9} {'baseline_s':>11} {'ratio':>7}")
    for k in sizes:
        start = time.perf_counter()
        run_full_demonstration(DemoSettings(
            k=k, duration=args.duration, realtime_factor=args.scale,
            settle=args.duration / 3, seed=args.seed,
        ))
        horse = time.perf_counter() - start

        topo = FatTreeTopo(k=k)
        emulator = PacketLevelEmulator(topo, time_scale=args.scale,
                                       seed=args.seed)
        start = time.perf_counter()
        emulator.setup()
        pairs = permutation_pairs(topo.hosts(), seed=args.seed)
        for __ in range(3):
            emulator.run_udp_workload(pairs, duration=args.duration,
                                      packets_per_second=args.pps)
        emulator.teardown()
        baseline = time.perf_counter() - start
        ratio = baseline / horse if horse > 0 else float("inf")
        print(f"{k:>2} {horse:>9.2f} {baseline:>11.2f} {ratio:>6.1f}x")
    return 0


def _parse_kv_params(pairs: "List[str] | None") -> dict:
    """``key=value`` strings -> dict with numbers parsed as numbers."""
    params = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"bad parameter {pair!r}; expected key=value")
        key, raw = pair.split("=", 1)
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        params[key.strip()] = value
    return params


def _parse_slos(raw_slos: "List[str] | None"):
    """``--slo kind=value`` strings -> SLO objects.

    ``converged_within=20``, ``max_recovery_time=10``,
    ``min_delivered_fraction=0.9``, ``max_control_messages=5000``, and
    ``expr=<metric expression>`` (everything after the first ``=`` is
    the expression).  Kinds and value coercions come from the one
    registry in :mod:`repro.results.slo`.
    """
    from repro.core.errors import ConfigurationError
    from repro.results import SLO_KINDS, slo_from_kv

    slos = []
    for raw in raw_slos or []:
        if "=" not in raw:
            raise SystemExit(
                f"bad SLO {raw!r}; expected kind=value with kind one of "
                f"{sorted(SLO_KINDS)}")
        kind, value = raw.split("=", 1)
        try:
            slo = slo_from_kv(kind.strip(), value.strip())
            slo.validate()
        except ConfigurationError as exc:
            raise SystemExit(f"bad SLO {raw!r}: {exc}")
        slos.append(slo)
    return slos


def _build_generated_spec(args: argparse.Namespace, seed: int):
    """The scenario a (generator options, seed) pair describes —
    shared by ``scenario run``, ``scenario sweep`` and the ``campaign``
    commands so a sweep line reproduces exactly."""
    from repro.scenarios import (
        ProtocolRecipe,
        TopologyRecipe,
        generate_scenario,
    )

    topology = TopologyRecipe(args.topo, _parse_kv_params(args.topo_param))
    protocol = None
    if args.protocol is not None:
        protocol = ProtocolRecipe(args.protocol,
                                  _parse_kv_params(args.protocol_param))
    spec = generate_scenario(
        seed,
        pattern=args.pattern,
        topology=topology,
        protocol=protocol,
        duration=args.duration,
        pattern_params=_parse_kv_params(args.pattern_param),
        traffic_family=getattr(args, "traffic_family", None),
        traffic_params=_parse_kv_params(getattr(args, "traffic_param",
                                                None)),
    )
    spec.slos = _parse_slos(getattr(args, "slo", None))
    return spec


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    from repro.scenarios import ScenarioRunner, ScenarioSpec

    if args.spec is not None:
        from repro.core.errors import SimulationError

        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                spec = ScenarioSpec.from_json(handle.read())
        except (OSError, ValueError, KeyError, TypeError,
                SimulationError) as exc:
            raise SystemExit(
                f"cannot load scenario spec {args.spec!r}: {exc!r}")
        # CLI-given SLOs compose with whatever the spec file carries.
        spec.slos = list(spec.slos) + _parse_slos(args.slo)
    else:
        spec = _build_generated_spec(args, args.seed)
    if args.save_spec:
        with open(args.save_spec, "w", encoding="utf-8") as handle:
            handle.write(spec.to_json() + "\n")
    result = ScenarioRunner().run(spec)
    if args.json:
        import json as _json

        print(_json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return 0 if result.slos_ok else 1
    print(result.summary())
    for outcome in result.injections:
        recovery = (f"{outcome.recovery_seconds:.3f}s"
                    if outcome.recovery_seconds is not None
                    else "not recovered")
        print(f"  {outcome.label:<44} recovery {recovery}")
    for verdict in result.slos:
        observed = ("" if verdict.observed is None
                    else f" observed={verdict.observed:g}")
        print(f"  SLO {verdict.slo:<40} {verdict.status}{observed}")
    print(f"wall {result.wall_seconds:.3f}s, "
          f"{result.events_fired} events, "
          f"{result.recomputations} reallocations")
    return 0 if result.slos_ok else 1


def _cmd_scenario_sweep(args: argparse.Namespace) -> int:
    from repro.scenarios import Campaign

    seeds = range(args.seed_base, args.seed_base + args.count)
    campaign = Campaign.seed_sweep(
        lambda seed: _build_generated_spec(args, seed),
        seeds, workers=args.workers,
    )
    outcome = campaign.run()
    # Non-zero when any SLO failed OR any scenario crashed: the
    # fault-isolated workers keep the sweep running, but a crash must
    # not read as success to a calling script.
    ok = outcome.slo_failures == 0 and outcome.failed_count == 0
    if args.json:
        import json as _json

        print(_json.dumps([r.to_dict() for r in outcome.results],
                          indent=2, sort_keys=True))
        return 0 if ok else 1
    print(outcome.summary())
    print("reproduce any line: repro scenario run --seed <seed> "
          + _generator_options_string(args))
    return 0 if ok else 1


def _generator_options_string(args: argparse.Namespace) -> str:
    """The generator options of ``args`` as a shell fragment, so the
    printed reproduce command really does rebuild the same scenario."""
    parts = [f"--pattern {args.pattern}", f"--topo {args.topo}",
             f"--duration {args.duration:g}"]
    if args.protocol is not None:
        parts.append(f"--protocol {args.protocol}")
    if getattr(args, "traffic_family", None) is not None:
        parts.append(f"--traffic-family {args.traffic_family}")
    for flag, pairs in (("--pattern-param", args.pattern_param),
                        ("--topo-param", args.topo_param),
                        ("--protocol-param", args.protocol_param),
                        ("--traffic-param",
                         getattr(args, "traffic_param", None))):
        for pair in pairs or []:
            parts.append(f"{flag} {pair}")
    import shlex

    for slo in getattr(args, "slo", None) or []:
        parts.append(f"--slo {shlex.quote(slo)}")
    return " ".join(parts)


def _cmd_trace_run(args: argparse.Namespace) -> int:
    """Run one scenario with the span tracer armed and export the
    timeline as Chrome trace-event JSON (loadable in Perfetto /
    chrome://tracing), plus a text top-spans report."""
    from repro.obs import (
        TRACER,
        enable_tracing,
        metrics,
        top_spans,
        top_spans_report,
        write_chrome_trace,
        write_spans_jsonl,
    )
    from repro.scenarios import ScenarioRunner, ScenarioSpec

    if args.spec is not None:
        from repro.core.errors import SimulationError

        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                spec = ScenarioSpec.from_json(handle.read())
        except (OSError, ValueError, KeyError, TypeError,
                SimulationError) as exc:
            raise SystemExit(
                f"cannot load scenario spec {args.spec!r}: {exc!r}")
        spec.slos = list(spec.slos) + _parse_slos(args.slo)
    else:
        spec = _build_generated_spec(args, args.seed)

    enable_tracing(args.capacity)
    TRACER.clear()
    result = ScenarioRunner().run(spec)
    spans = TRACER.spans()
    snapshot = metrics().snapshot()
    write_chrome_trace(args.out, spans, snapshot)
    if args.jsonl:
        write_spans_jsonl(args.jsonl, spans)
    if args.json:
        import json as _json

        print(_json.dumps({
            "result": result.to_dict(),
            "fingerprint": result.fingerprint(),
            "trace": args.out,
            "spans": len(spans),
            "spans_dropped": TRACER.dropped,
            "top_spans": top_spans(spans)[:args.top],
            "metrics": snapshot,
        }, indent=2, sort_keys=True))
        return 0
    print(result.summary())
    print(f"trace: {args.out} ({len(spans)} span(s), "
          f"{TRACER.dropped} dropped)")
    if args.jsonl:
        print(f"spans jsonl: {args.jsonl}")
    print()
    print(top_spans_report(spans, args.top))
    return 0


def _open_store(path: str, must_exist: bool, readonly: bool = False,
                format: "str | None" = None):
    from repro.core.errors import SimulationError
    from repro.results import ResultStore

    try:
        return ResultStore(path, create=not must_exist, readonly=readonly,
                           format=format)
    except (OSError, SimulationError) as exc:
        raise SystemExit(f"cannot open result store {path!r}: {exc}")


def _campaign_from_args(args: argparse.Namespace):
    from repro.scenarios import Campaign

    seeds = range(args.seed_base, args.seed_base + args.count)
    return Campaign.seed_sweep(
        lambda seed: _build_generated_spec(args, seed),
        seeds, workers=args.workers,
    )


def _announce_fleet_address(address) -> None:
    """Print the line a worker pastes to join.  The bind address may
    be the listen wildcard, which is not a dialable destination — the
    printed command substitutes this machine's hostname."""
    import socket as _socket

    host, port = address[0], address[1]
    if host in ("0.0.0.0", "::"):
        host = _socket.gethostname()
    print(f"fleet coordinator listening on {address[0]}:{port} "
          f"-- join with:")
    print(f"  repro fleet join {host}:{port}")
    sys.stdout.flush()


def _fleet_executor_from_args(args: argparse.Namespace):
    """The ``--fleet N`` option family -> a FleetExecutor (or None)."""
    fleet_workers = getattr(args, "fleet", None)
    if not fleet_workers:
        return None
    from repro.fleet import FleetExecutor

    transport = getattr(args, "transport", "multiprocessing")
    # The tcp transport launches nothing: workers join from outside,
    # so they need a reachable listener and the address printed.
    external = transport == "tcp"
    return FleetExecutor(
        workers=fleet_workers,
        transport=transport,
        chunk_size=getattr(args, "chunk_size", None),
        lease_timeout=getattr(args, "lease_timeout", None) or 30.0,
        host="0.0.0.0" if external else "127.0.0.1",
        port=getattr(args, "fleet_port", 0) or 0,
        wait_timeout=getattr(args, "wait_timeout", None),
        on_listening=_announce_fleet_address if external else None,
    )


def _campaign_stats_exit_code(stats, store) -> int:
    """The shared gate for campaign-style runs.

    Gate on the WHOLE store, not just this invocation: a resume that
    only runs passing leftovers must still exit non-zero when the
    interrupted half persisted failures — same contract as sweep.
    A fleet run that left chunks permanently failed produced NO
    records for those specs, which the store aggregate can't see, so
    it gates separately.
    """
    code = 0 if store.aggregate().gate_ok else 1
    if stats.fleet and (stats.fleet.get("unfinished")
                        or stats.fleet.get("failed_chunks")):
        code = 1
    return code


def _emit_campaign_stats(stats, as_json: bool) -> bool:
    """Print run stats; True means JSON went out (suppress any
    trailing human-oriented hint lines)."""
    if as_json:
        import dataclasses
        import json as _json

        print(_json.dumps(dataclasses.asdict(stats), indent=2,
                          sort_keys=True))
        return True
    print(stats.summary())
    return False


def _cmd_topo_classes(args: argparse.Namespace) -> int:
    from repro.core.errors import SimulationError
    from repro.symmetry import SymmetryMap, symmetry_map_for_spec

    if args.spec is not None:
        from repro.scenarios import ScenarioSpec

        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                spec = ScenarioSpec.from_json(handle.read())
        except (OSError, ValueError, KeyError, TypeError,
                SimulationError) as exc:
            raise SystemExit(
                f"cannot load scenario spec {args.spec!r}: {exc!r}")
        symmetry_map = symmetry_map_for_spec(spec)
    else:
        from repro.scenarios import TopologyRecipe

        recipe = TopologyRecipe(args.topo, _parse_kv_params(args.topo_param))
        try:
            topo = recipe.build()
        except SimulationError as exc:
            raise SystemExit(f"cannot build topology: {exc}")
        symmetry_map = SymmetryMap.from_topo(topo)
    print(symmetry_map.describe(max_members=args.max_members))
    return 0


def _cmd_topo_import(args: argparse.Namespace) -> int:
    import json as _json

    from repro.core.errors import SimulationError
    from repro.scenarios import TopologyRecipe

    params = {"path": args.file}
    if args.hosts_per_node != 1:
        params["hosts_per_node"] = args.hosts_per_node
    if args.device != "router":
        params["device"] = args.device
    recipe = TopologyRecipe("graphml", params)
    try:
        topo = recipe.build()  # validate before emitting anything
    except SimulationError as exc:
        raise SystemExit(f"cannot import {args.file!r}: {exc}")
    text = _json.dumps(recipe.to_dict(), indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        print(text)
    print(f"imported {topo.name}: {len(topo.host_specs)} hosts, "
          f"{len(topo.switch_specs)} devices, "
          f"{len(topo.link_specs)} links", file=sys.stderr)
    return 0


def _cmd_campaign_run(args: argparse.Namespace, resume: bool = False) -> int:
    store = _open_store(args.store, must_exist=resume,
                        format=getattr(args, "store_format", None))
    campaign = _campaign_from_args(args)
    if not resume and len(store) > 0:
        raise SystemExit(
            f"store {args.store!r} already holds {len(store)} record(s); "
            f"use 'repro campaign resume' to finish an interrupted sweep")
    if resume and len(store) > 0:
        # spec_hash covers every generator option and SLO: a resume
        # with different flags would silently re-run all seeds and mix
        # two spec families in one store. Refuse instead.
        overlap = sum(1 for spec in campaign.specs
                      if (spec.spec_hash(), spec.seed) in store)
        if overlap == 0:
            raise SystemExit(
                f"none of this sweep's {len(campaign.specs)} (spec, seed) "
                f"pairs match the {len(store)} record(s) in "
                f"{args.store!r} — the generator/--slo options differ "
                f"from the original run; re-check them (or use "
                f"'campaign run' with a fresh store)")
    stats = campaign.run(
        store=store,
        retry_errors=getattr(args, "retry_errors", False),
        executor=_fleet_executor_from_args(args))
    code = _campaign_stats_exit_code(stats, store)
    if _emit_campaign_stats(stats, args.json):
        return code
    print("inspect:  repro campaign report --store " + args.store)
    print("gate:     repro campaign check --store " + args.store)
    return code


def _cmd_campaign_resume(args: argparse.Namespace) -> int:
    return _cmd_campaign_run(args, resume=True)


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.results import write_csv_rows

    # Read-only: report must be safe to run against a live sweep.
    # store.aggregate() rolls up straight off metric columns when the
    # store is columnar; JSONL stores stream records as before.  The
    # CSV rides iter_csv_rows(), which columnar stores serve from the
    # index/metrics/SLO columns without decompressing healthy payloads.
    store = _open_store(args.store, must_exist=True, readonly=True)
    aggregate = store.aggregate()
    print(aggregate.report())
    if args.csv:
        rows = write_csv_rows(store.iter_csv_rows(), args.csv)
        print(f"wrote {rows} row(s) to {args.csv}")
    return 0


def _cmd_campaign_check(args: argparse.Namespace) -> int:
    """The regression gate: exit 0 iff every persisted SLO verdict
    passed and no scenario errored."""
    store = _open_store(args.store, must_exist=True, readonly=True)
    aggregate = store.aggregate()
    if aggregate.records == 0:
        # A gate needs evidence: an empty store (sweep died before its
        # first record, or wrong --store path) must not pass.
        print(f"check FAILED: store {args.store!r} holds no records")
        return 1
    if not aggregate.slo_tallies and aggregate.errors == 0:
        print(f"{aggregate.records} record(s), no SLOs attached — "
              f"nothing to check")
        return 0
    for label in sorted(aggregate.slo_tallies):
        tally = aggregate.slo_tallies[label]
        status = "ok" if tally.ok else "VIOLATED"
        print(f"{label:<44} {status} "
              f"(pass={tally.passed} fail={tally.failed} "
              f"error={tally.errored})")
    if aggregate.errors:
        print(f"{aggregate.errors} scenario(s) errored mid-run")
    if aggregate.gate_ok:
        print(f"check OK: {aggregate.records} record(s) clean")
        return 0
    print(f"check FAILED: {aggregate.gate_detail()}")
    return 1


def _cmd_campaign_diff(args: argparse.Namespace) -> int:
    """A/B store comparison; non-zero exit on any divergence (the
    controller-testing gate)."""
    from repro.results import diff_stores

    store_a = _open_store(args.store_a, must_exist=True, readonly=True)
    store_b = _open_store(args.store_b, must_exist=True, readonly=True)
    if len(store_a) == 0 and len(store_b) == 0:
        # Same philosophy as `campaign check`: a gate needs evidence,
        # and two empty stores compared nothing.
        message = (f"both {args.store_a!r} and {args.store_b!r} hold no "
                   f"records — nothing was compared")
        if args.json:
            import json as _json

            print(_json.dumps({"identical": False, "error": message},
                              indent=2, sort_keys=True))
        else:
            print(f"diff FAILED: {message}")
        return 1
    diff = diff_stores(store_a, store_b)
    if args.json:
        import json as _json

        print(_json.dumps(diff.to_dict(), indent=2, sort_keys=True))
    else:
        print(diff.report())
    return 0 if diff.identical else 1


def _cmd_store_merge(args: argparse.Namespace) -> int:
    """Concatenate shard stores into one, dedup by (spec_hash, seed)."""
    target = _open_store(args.target, must_exist=False,
                         format=getattr(args, "store_format", None))
    sources = [_open_store(path, must_exist=True, readonly=True)
               for path in args.sources]
    merged = target.merge_from(sources)
    if args.compact:
        target.compact()
    from repro import __version__

    target.record_provenance({
        "transport": "merge",
        "merged": merged,
        "merged_from": list(args.sources),
        "repro_version": __version__,
    })
    print(f"merged {merged} record(s) from {len(sources)} store(s) "
          f"into {args.target} ({len(target)} total)")
    return 0


def _cmd_store_convert(args: argparse.Namespace) -> int:
    """Rewrite a store in the other on-disk format.  The record set,
    dedup state and canonical digest are preserved bit-for-bit; only
    the bytes on disk change."""
    from repro.core.errors import SimulationError
    from repro.results import convert_store

    source = _open_store(args.source, must_exist=True, readonly=True)
    try:
        target = convert_store(source, args.target, args.to)
    except (OSError, SimulationError) as exc:
        raise SystemExit(f"cannot convert {args.source!r}: {exc}")
    print(f"converted {len(target)} record(s): {args.source} "
          f"({source.storage_format}) -> {args.target} "
          f"({target.storage_format})")
    print(f"canonical digest {target.canonical_digest()}")
    return 0


def _cmd_fleet_bench(args: argparse.Namespace) -> int:
    """Measure fleet protocol overhead with synthetic records — no
    simulation runs, so records/s isolates framing + ingest + merge."""
    from repro.core.errors import SimulationError
    from repro.fleet.bench import run_protocol_bench

    try:
        stats = run_protocol_bench(
            records=args.records,
            workers=args.workers,
            chunk_size=args.chunk_size,
            store_format=args.store_format,
            store_path=args.store,
        )
    except SimulationError as exc:
        raise SystemExit(f"fleet bench failed: {exc}")
    if args.json:
        import json as _json

        print(_json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"fleet protocol bench: {stats['records']} record(s), "
          f"{stats['workers']} worker(s), "
          f"chunk_size={stats['chunk_size']}, "
          f"store={stats['store_format']}")
    print(f"  ingest wall     {stats['wall_seconds']:.3f}s")
    print(f"  throughput      {stats['records_per_second']:.0f} records/s")
    print(f"  merge wall      {stats['merge_seconds']:.3f}s")
    print(f"  bytes on wire   {stats['wire_bytes']} "
          f"({stats['wire_bytes_per_record']:.0f} B/record)")
    return 0


def _search_config_from_args(args: argparse.Namespace):
    from repro.scenarios import ProtocolRecipe, SearchConfig, TopologyRecipe

    protocol = None
    if args.protocol is not None:
        protocol = ProtocolRecipe(args.protocol,
                                  _parse_kv_params(args.protocol_param))
    return SearchConfig(
        family=args.pattern,
        strategy=args.strategy,
        objective=args.objective,
        budget=args.budget,
        population=args.population,
        elites=args.elites,
        seed=args.seed,
        duration=args.duration,
        topology=TopologyRecipe(args.topo, _parse_kv_params(args.topo_param)),
        protocol=protocol,
        pattern_params=_parse_kv_params(args.pattern_param),
        traffic_family=args.traffic_family,
        traffic_params=_parse_kv_params(args.traffic_param),
    )


def _emit_leaderboard(store, config, args,
                      stats=None) -> int:
    """Shared tail of the search commands: rank, print (or JSON),
    optionally save the worst spec for replay.  Exit 0 only when the
    leaderboard holds at least one healthy (non-errored) scenario — a
    search that measured nothing must not read as success."""
    from repro.core.errors import SimulationError
    from repro.scenarios import (
        leaderboard,
        leaderboard_digest,
        leaderboard_report,
        worst_spec,
    )

    # run/resume already ranked the store for their digest — reuse
    # those entries instead of a second full-store pass.
    if stats is not None and stats.entries:
        entries = stats.entries
    else:
        entries = leaderboard(store, config)
    healthy = any(entry.value is not None for entry in entries)
    if args.json:
        import json as _json

        payload = {
            "config": config.to_dict(),
            "digest": leaderboard_digest(entries),
            "leaderboard": [entry.to_dict()
                            for entry in entries[:args.top]],
        }
        if stats is not None:
            payload["stats"] = stats.to_dict()
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        if stats is not None:
            print(stats.summary())
        print(leaderboard_report(entries, config, top=args.top))
    if args.save_worst:
        try:
            spec_dict = worst_spec(store, entries)
        except SimulationError as exc:
            print(f"cannot save worst spec: {exc}")
            return 1
        import json as _json

        with open(args.save_worst, "w", encoding="utf-8") as handle:
            handle.write(_json.dumps(spec_dict, indent=2, sort_keys=True)
                         + "\n")
        if not args.json:
            print(f"worst spec -> {args.save_worst}  (replay: "
                  f"repro scenario run --spec {args.save_worst})")
    return 0 if healthy else 1


def _cmd_search_run(args: argparse.Namespace) -> int:
    from repro.core.errors import SimulationError
    from repro.scenarios import run_search

    store = _open_store(args.store, must_exist=False,
                        format=getattr(args, "store_format", None))
    config = _search_config_from_args(args)
    try:
        stats = run_search(config, store, workers=args.workers)
    except SimulationError as exc:
        raise SystemExit(f"search failed: {exc}")
    return _emit_leaderboard(store, config, args, stats=stats)


def _cmd_search_resume(args: argparse.Namespace) -> int:
    """Finish a killed search: the store carries the whole config, so
    no generator flags are re-given (and none can drift)."""
    from repro.core.errors import SimulationError
    from repro.scenarios import load_search_config, run_search

    store = _open_store(args.store, must_exist=True)
    try:
        config = load_search_config(store)
        stats = run_search(config, store, workers=args.workers)
    except SimulationError as exc:
        raise SystemExit(f"search resume failed: {exc}")
    return _emit_leaderboard(store, config, args, stats=stats)


def _cmd_search_report(args: argparse.Namespace) -> int:
    from repro.core.errors import SimulationError
    from repro.scenarios import load_search_config

    store = _open_store(args.store, must_exist=True, readonly=True)
    try:
        config = load_search_config(store)
    except SimulationError as exc:
        raise SystemExit(str(exc))
    return _emit_leaderboard(store, config, args)


def _cmd_fleet_serve(args: argparse.Namespace) -> int:
    """Coordinate a sweep for workers that join over TCP."""
    if getattr(args, "resume", None):
        return _cmd_fleet_serve_resume(args)
    if not args.store:
        raise SystemExit("fleet serve needs --store DIR "
                         "(or --resume JOURNAL to continue a crashed run)")
    from repro.fleet import FleetExecutor

    store = _open_store(args.store, must_exist=False,
                        format=getattr(args, "store_format", None))
    campaign = _campaign_from_args(args)
    # The tcp transport launches nothing, but `workers` still sizes
    # the chunk plan (~4 chunks per expected worker) — too few chunks
    # would leave late joiners idle and make each steal forfeit a
    # huge slice.
    executor = FleetExecutor(
        workers=args.expect_workers,
        transport="tcp",
        chunk_size=args.chunk_size,
        lease_timeout=args.lease_timeout or 30.0,
        host=args.host, port=args.port,
        wait_timeout=args.wait_timeout,
        on_listening=_announce_fleet_address,
    )
    from repro.core.errors import SimulationError

    try:
        stats = campaign.run(store=store, executor=executor)
    except SimulationError as exc:
        raise SystemExit(f"fleet serve failed: {exc}")
    code = _campaign_stats_exit_code(stats, store)
    _emit_campaign_stats(stats, args.json)
    return code


def _cmd_fleet_serve_resume(args: argparse.Namespace) -> int:
    """Continue a crashed fleet run from its journal.  No generator
    flags: the journal's plan carries the exact chunk list, and what
    already completed (target store + surviving shards) is skipped or
    re-ingested rather than re-run."""
    import os as _os

    from repro.core.errors import SimulationError
    from repro.fleet import resume_coordinator

    try:
        coordinator = resume_coordinator(
            args.resume,
            host=args.host, port=args.port,
            # None -> the crashed run's own value, from the plan line.
            lease_timeout=args.lease_timeout)
    except SimulationError as exc:
        raise SystemExit(f"fleet resume failed: {exc}")
    if args.store and _os.path.abspath(args.store) != coordinator.store.path:
        raise SystemExit(
            f"--store {args.store!r} is not the journal's store "
            f"{coordinator.store.path!r}; omit --store when resuming")
    try:
        coordinator.start()
    except SimulationError as exc:
        raise SystemExit(f"fleet resume failed: {exc}")
    _announce_fleet_address(coordinator.address)
    try:
        if not coordinator.wait(args.wait_timeout):
            print(f"fleet resume: not finished after "
                  f"{args.wait_timeout}s; merging what completed",
                  file=sys.stderr)
        coordinator.drain()
    finally:
        coordinator.stop()
        stats = coordinator.finish(transport="tcp")
    if args.json:
        import json as _json

        print(_json.dumps(stats.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"fleet resume: {stats.merged} record(s) merged into "
              f"{coordinator.store.path} "
              f"({stats.reingested_records} re-ingested from surviving "
              f"shards, {stats.requeued_lost} chunk(s) re-run)")
        print(f"  unfinished={stats.unfinished} "
              f"failed_chunks={stats.failed_chunks} "
              f"reclaimed={stats.reclaimed} "
              f"stopped_cleanly={stats.stopped_cleanly}")
    if stats.unfinished or stats.failed_chunks:
        return 1
    return 0 if coordinator.store.aggregate().gate_ok else 1


def _cmd_fleet_join(args: argparse.Namespace) -> int:
    """Work for a coordinator until it runs out of chunks."""
    from repro.fleet import parse_address, worker_main
    from repro.fleet.protocol import ProtocolError

    try:
        host, port = parse_address(args.address)
    except ProtocolError as exc:
        raise SystemExit(str(exc))
    return worker_main(host, port, worker_id=args.worker_id,
                       connect_timeout=args.connect_timeout,
                       reconnect_attempts=args.reconnect_attempts)


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    """One status snapshot from a running coordinator."""
    import socket as _socket

    from repro.fleet import parse_address, recv_message, send_message
    from repro.fleet.protocol import ProtocolError

    try:
        host, port = parse_address(args.address)
    except ProtocolError as exc:
        raise SystemExit(str(exc))
    try:
        with _socket.create_connection((host, port), timeout=5.0) as sock:
            send_message(sock, {"type": "status"})
            reply = recv_message(sock)
    except (OSError, ProtocolError) as exc:
        raise SystemExit(f"cannot reach coordinator at {args.address}: {exc}")
    if reply is None or reply.get("type") != "status_reply":
        raise SystemExit(f"unexpected reply from {args.address}: {reply}")
    status = reply.get("status", {})
    if args.json:
        import json as _json

        print(_json.dumps(status, indent=2, sort_keys=True))
        return 0
    chunks = status.get("chunks", {})
    print(f"chunks: {chunks.get('done', 0)}/{chunks.get('total', 0)} done, "
          f"{chunks.get('leased', 0)} leased, "
          f"{chunks.get('pending', 0)} pending, "
          f"{chunks.get('failed', 0)} failed")
    print(f"records ingested: {status.get('records_ingested', 0)} "
          f"({status.get('duplicates_dropped', 0)} duplicate(s) dropped, "
          f"{status.get('reclaimed', 0)} lease(s) reclaimed)")
    for name, info in sorted(status.get("workers", {}).items()):
        state = "up" if info.get("connected") else "gone"
        print(f"  worker {name:<24} {state:<5} "
              f"records={info.get('records', 0)} "
              f"chunks={info.get('chunks_done', 0)} "
              f"reconnects={info.get('reconnects', 0)} "
              f"idle={info.get('idle_seconds', 0):.1f}s")
    quarantined = status.get("quarantined", [])
    print(f"quarantined: {len(quarantined)}"
          + (f" ({', '.join(quarantined)})" if quarantined else ""))
    print(f"done: {status.get('done')}")
    return 0


def _add_fleet_tuning_options(parser: argparse.ArgumentParser) -> None:
    """Chunking/lease knobs shared by ``fleet serve`` and
    ``campaign run --fleet``."""
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="scenarios per lease (default: ~4 chunks "
                             "per worker)")
    parser.add_argument("--lease-timeout", type=float, default=None,
                        help="seconds without any frame (records or "
                             "liveness heartbeats) from a worker before "
                             "its chunks are reclaimed (default 30; a "
                             "resume defaults to the crashed run's "
                             "value); bound a run with a live-but-stuck "
                             "worker via --wait-timeout")
    parser.add_argument("--wait-timeout", type=float, default=None,
                        help="give up if the sweep is not finished after "
                             "this many seconds (completed records are "
                             "still merged; resume finishes the rest)")


def _add_family_options(parser: argparse.ArgumentParser) -> None:
    """The scenario-family knobs: failure pattern, topology, protocol,
    traffic matrix, horizon — shared by the scenario/campaign commands
    and ``search run``."""
    parser.add_argument(
        "--pattern", default="k-random-links",
        choices=["k-random-links", "flap-storm", "rolling-maintenance",
                 "gray-brownout", "srlg"],
        help="failure pattern to generate (srlg: correlated failures "
             "of whole shared-risk link groups)")
    parser.add_argument(
        "--pattern-param", action="append", metavar="KEY=VALUE",
        help="pattern tunable (e.g. k=3, cycles=4, groups=2); repeatable")
    parser.add_argument(
        "--topo", default="wan",
        choices=["wan", "fattree", "leafspine", "linear", "star", "tree",
                 "jellyfish"],
        help="topology recipe")
    parser.add_argument(
        "--topo-param", action="append", metavar="KEY=VALUE",
        help="topology parameter (e.g. k=4, num_spines=4); repeatable")
    parser.add_argument(
        "--protocol", default=None, choices=["bgp", "ospf", "sdn", "none"],
        help="control plane (default: fast-timer OSPF)")
    parser.add_argument(
        "--protocol-param", action="append", metavar="KEY=VALUE",
        help="protocol timer (e.g. hold_time=3); repeatable")
    parser.add_argument("--duration", type=float, default=40.0,
                        help="simulated horizon per scenario, seconds")
    parser.add_argument(
        "--traffic-family", default=None,
        choices=["uniform", "elephant-mice", "hotspot"],
        help="traffic-matrix family (default: a plain permutation)")
    parser.add_argument(
        "--traffic-param", action="append", metavar="KEY=VALUE",
        help="traffic-matrix tunable (e.g. rate_bps=5e8, "
             "elephant_factor=8); repeatable")


def _add_scenario_generator_options(parser: argparse.ArgumentParser) -> None:
    """Options shared by ``scenario run`` and ``scenario sweep``."""
    _add_family_options(parser)
    parser.add_argument(
        "--slo", action="append", metavar="KIND=VALUE",
        help="SLO assertion evaluated in-run (converged_within=S, "
             "max_recovery_time=S, min_delivered_fraction=F, "
             "max_control_messages=N, expr=EXPRESSION); repeatable")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of a table")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the three-TE-scheme demonstration")
    demo.add_argument("--k", type=int, default=4)
    demo.add_argument("--duration", type=float, default=20.0)
    demo.add_argument("--rate-gbps", type=float, default=1.0)
    demo.add_argument("--seed", type=int, default=42)
    demo.set_defaults(func=_cmd_demo)

    fig1 = sub.add_parser("fig1", help="two-router BGP mode transitions")
    fig1.add_argument("--horizon", type=float, default=10.0)
    fig1.add_argument("--fti-increment", type=float, default=0.001)
    fig1.add_argument("--des-timeout", type=float, default=0.1)
    fig1.set_defaults(func=_cmd_fig1)

    fig3 = sub.add_parser("fig3", help="Horse vs baseline execution time")
    fig3.add_argument("--sizes", default="4,6,8")
    fig3.add_argument("--duration", type=float, default=30.0)
    fig3.add_argument("--scale", type=float, default=0.02)
    fig3.add_argument("--pps", type=float, default=150.0)
    fig3.add_argument("--seed", type=int, default=42)
    fig3.set_defaults(func=_cmd_fig3)

    scenario = sub.add_parser(
        "scenario", help="declarative fault-injection scenarios")
    scenario_sub = scenario.add_subparsers(dest="scenario_command",
                                           required=True)

    run = scenario_sub.add_parser(
        "run", help="run one scenario (generated by seed, or from JSON)")
    run.add_argument("--seed", type=int, default=0,
                     help="generator seed (ignored with --spec)")
    run.add_argument("--spec", default=None, metavar="FILE",
                     help="load the scenario from a JSON spec file")
    run.add_argument("--save-spec", default=None, metavar="FILE",
                     help="write the scenario's JSON spec before running")
    _add_scenario_generator_options(run)
    run.set_defaults(func=_cmd_scenario_run)

    sweep = scenario_sub.add_parser(
        "sweep", help="run a seeded campaign across worker processes")
    sweep.add_argument("--count", type=int, default=20,
                       help="number of seeds to sweep")
    sweep.add_argument("--seed-base", type=int, default=0,
                       help="first seed of the sweep")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: all usable CPUs, "
                            "cgroup-aware)")
    _add_scenario_generator_options(sweep)
    sweep.set_defaults(func=_cmd_scenario_sweep)

    topo = sub.add_parser(
        "topo", help="topology tools: symmetry classes, GraphML import")
    topo_sub = topo.add_subparsers(dest="topo_command", required=True)

    tclasses = topo_sub.add_parser(
        "classes",
        help="detect structural automorphism classes and compression")
    tclasses.add_argument("--spec", default=None, metavar="FILE",
                          help="scenario spec JSON: uses its topology with "
                               "every injection target pinned")
    tclasses.add_argument("--topo", default="fattree",
                          help="topology recipe kind (ignored with --spec)")
    tclasses.add_argument("--topo-param", action="append", metavar="K=V",
                          help="topology builder parameter (repeatable)")
    tclasses.add_argument("--max-members", type=int, default=6,
                          help="class members listed per row")
    tclasses.set_defaults(func=_cmd_topo_classes)

    timport = topo_sub.add_parser(
        "import", help="import a GraphML file as a topology recipe")
    timport.add_argument("file", help="GraphML file (topology-zoo style)")
    timport.add_argument("--hosts-per-node", type=int, default=1,
                         help="hosts attached to every imported node")
    timport.add_argument("--device", choices=("router", "switch"),
                         default="router",
                         help="device kind for imported nodes")
    timport.add_argument("--out", default=None, metavar="FILE",
                         help="write the recipe JSON here (default stdout)")
    timport.set_defaults(func=_cmd_topo_import)

    trace = sub.add_parser(
        "trace",
        help="telemetry: run a scenario with the span tracer armed "
             "and export a Perfetto-loadable timeline")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trun = trace_sub.add_parser(
        "run", help="trace one scenario (generated by seed, or from "
                    "a JSON spec) into Chrome trace-event JSON")
    trun.add_argument("--seed", type=int, default=0,
                      help="generator seed (ignored with --spec)")
    trun.add_argument("--spec", default=None, metavar="FILE",
                      help="load the scenario from a JSON spec file")
    trun.add_argument("--out", default="trace.json", metavar="FILE",
                      help="trace-event JSON output path "
                           "(default trace.json; open in "
                           "https://ui.perfetto.dev)")
    trun.add_argument("--jsonl", default=None, metavar="FILE",
                      help="also dump raw spans as JSONL")
    trun.add_argument("--top", type=int, default=20,
                      help="rows in the top-spans report (default 20)")
    trun.add_argument("--capacity", type=int, default=None,
                      help="span ring-buffer capacity (default 65536; "
                           "oldest spans are dropped beyond it)")
    _add_scenario_generator_options(trun)
    trun.set_defaults(func=_cmd_trace_run)

    campaign = sub.add_parser(
        "campaign",
        help="durable sweeps: stream to a result store, resume, "
             "report, gate on SLOs")
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)

    def add_store_option(parser_obj):
        parser_obj.add_argument("--store", required=True, metavar="DIR",
                                help="result store directory")

    def add_store_format_option(parser_obj):
        parser_obj.add_argument(
            "--store-format", default=None,
            choices=["jsonl", "columnar"],
            help="on-disk format when the store is created (default "
                 "jsonl; an existing store's format is auto-detected "
                 "and this flag must match it)")

    def add_fleet_backend_options(parser_obj):
        parser_obj.add_argument(
            "--fleet", type=int, default=None, metavar="N",
            help="run through a fleet of N workers instead of the "
                 "local pool (see --transport)")
        parser_obj.add_argument(
            "--transport", default="multiprocessing",
            choices=["inprocess", "multiprocessing", "tcp"],
            help="how --fleet workers run (tcp: workers must "
                 "'repro fleet join' this process)")
        parser_obj.add_argument(
            "--fleet-port", type=int, default=0,
            help="coordinator TCP port for --fleet (default: ephemeral)")
        _add_fleet_tuning_options(parser_obj)

    crun = campaign_sub.add_parser(
        "run", help="run a seeded sweep, streaming results to a store")
    add_store_option(crun)
    crun.add_argument("--count", type=int, default=20,
                      help="number of seeds to sweep")
    crun.add_argument("--seed-base", type=int, default=0,
                      help="first seed of the sweep")
    crun.add_argument("--workers", type=int, default=None,
                      help="worker processes (default: all usable CPUs, "
                           "cgroup-aware)")
    add_store_format_option(crun)
    add_fleet_backend_options(crun)
    _add_scenario_generator_options(crun)
    crun.set_defaults(func=_cmd_campaign_run)

    cresume = campaign_sub.add_parser(
        "resume",
        help="finish an interrupted sweep: only (spec, seed) pairs "
             "missing from the store run")
    add_store_option(cresume)
    cresume.add_argument("--count", type=int, default=20,
                         help="number of seeds to sweep")
    cresume.add_argument("--seed-base", type=int, default=0,
                         help="first seed of the sweep")
    cresume.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: all usable "
                              "CPUs, cgroup-aware)")
    cresume.add_argument(
        "--retry-errors", action="store_true",
        help="also re-run scenarios whose persisted record is an "
             "error result, superseding it")
    add_fleet_backend_options(cresume)
    _add_scenario_generator_options(cresume)
    cresume.set_defaults(func=_cmd_campaign_resume)

    creport = campaign_sub.add_parser(
        "report", help="percentile/mean rollups over a store")
    add_store_option(creport)
    creport.add_argument("--csv", default=None, metavar="FILE",
                         help="also export one CSV row per scenario")
    creport.set_defaults(func=_cmd_campaign_report)

    ccheck = campaign_sub.add_parser(
        "check",
        help="regression gate: non-zero exit if any SLO failed or any "
             "scenario errored")
    add_store_option(ccheck)
    ccheck.set_defaults(func=_cmd_campaign_check)

    cdiff = campaign_sub.add_parser(
        "diff",
        help="A/B-compare two stores of the same spec family; "
             "non-zero exit on any divergence")
    cdiff.add_argument("store_a", metavar="STORE_A",
                       help="reference store directory")
    cdiff.add_argument("store_b", metavar="STORE_B",
                       help="candidate store directory")
    cdiff.add_argument("--json", action="store_true",
                       help="emit the diff as JSON")
    cdiff.set_defaults(func=_cmd_campaign_diff)

    store = sub.add_parser(
        "store", help="result-store maintenance (merge shards, ...)")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    smerge = store_sub.add_parser(
        "merge",
        help="concatenate stores into one, dedup by (spec_hash, seed) "
             "— healthy records supersede error records")
    smerge.add_argument("target", metavar="TARGET",
                        help="destination store (created if missing)")
    smerge.add_argument("sources", nargs="+", metavar="SOURCE",
                        help="shard store directories to fold in")
    smerge.add_argument("--compact", action="store_true",
                        help="also rewrite the target dropping "
                             "superseded/dead bytes")
    add_store_format_option(smerge)
    smerge.set_defaults(func=_cmd_store_merge)

    sconvert = store_sub.add_parser(
        "convert",
        help="rewrite a store in the other on-disk format "
             "(jsonl <-> columnar); records and digest are preserved")
    sconvert.add_argument("source", metavar="SOURCE",
                          help="existing store directory")
    sconvert.add_argument("target", metavar="TARGET",
                          help="destination directory (created; must "
                               "not already hold a store)")
    sconvert.add_argument("--to", required=True,
                          choices=["jsonl", "columnar"],
                          help="target on-disk format")
    sconvert.set_defaults(func=_cmd_store_convert)

    search = sub.add_parser(
        "search",
        help="adversarial scenario search: find the specs that "
             "maximize an objective (worst-case hunting)")
    search_sub = search.add_subparsers(dest="search_command", required=True)

    def add_search_output_options(parser_obj):
        parser_obj.add_argument("--top", type=int, default=10,
                                help="leaderboard entries to show")
        parser_obj.add_argument("--save-worst", default=None, metavar="FILE",
                                help="write the worst spec's JSON for "
                                     "replay via 'scenario run --spec'")
        parser_obj.add_argument("--json", action="store_true",
                                help="emit stats + leaderboard as JSON")

    srun = search_sub.add_parser(
        "run", help="run a seeded, resumable adversarial search")
    add_store_option(srun)
    srun.add_argument("--budget", type=int, default=32,
                      help="total scenario evaluations")
    srun.add_argument("--population", type=int, default=8,
                      help="scenarios per generation")
    srun.add_argument("--elites", type=int, default=2,
                      help="top specs each generation mutates from")
    srun.add_argument("--strategy", default="evolve",
                      choices=["random", "evolve"],
                      help="random sampling baseline, or the "
                           "evolutionary perturbation loop")
    srun.add_argument("--objective", default="delivered_shortfall",
                      help="what to maximize: convergence_time, "
                           "recovery_time, delivered_shortfall, or any "
                           "metric expression (higher = worse)")
    srun.add_argument("--seed", type=int, default=0,
                      help="search seed (candidate derivation root)")
    srun.add_argument("--workers", type=int, default=None,
                      help="worker processes per generation (default: "
                           "all usable CPUs, cgroup-aware)")
    add_store_format_option(srun)
    _add_family_options(srun)
    add_search_output_options(srun)
    srun.set_defaults(func=_cmd_search_run)

    sresume = search_sub.add_parser(
        "resume",
        help="finish a killed search exactly (config comes from the "
             "store; only missing scenarios run)")
    add_store_option(sresume)
    sresume.add_argument("--workers", type=int, default=None,
                         help="worker processes per generation")
    add_search_output_options(sresume)
    sresume.set_defaults(func=_cmd_search_resume)

    sreport = search_sub.add_parser(
        "report", help="ranked worst-case leaderboard of a search store")
    add_store_option(sreport)
    add_search_output_options(sreport)
    sreport.set_defaults(func=_cmd_search_report)

    fleet = sub.add_parser(
        "fleet",
        help="distributed campaigns: one coordinator, workers anywhere")
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)

    fserve = fleet_sub.add_parser(
        "serve",
        help="coordinate a sweep for TCP workers (repro fleet join)")
    # Not add_store_option: --resume derives the store from the
    # journal's plan, so --store is only required for fresh runs.
    fserve.add_argument("--store", required=False, default=None,
                        metavar="DIR", help="result store directory "
                        "(required unless --resume)")
    fserve.add_argument("--resume", default=None, metavar="JOURNAL",
                        help="continue a crashed run from its journal "
                             "(<store>/fleet-journal.jsonl); surviving "
                             "worker shards are re-ingested, not re-run, "
                             "and generator flags are ignored")
    fserve.add_argument("--count", type=int, default=20,
                        help="number of seeds to sweep")
    fserve.add_argument("--seed-base", type=int, default=0,
                        help="first seed of the sweep")
    fserve.add_argument("--host", default="0.0.0.0",
                        help="listen address (default: all interfaces)")
    fserve.add_argument("--port", type=int, default=0,
                        help="listen port (default: ephemeral, printed)")
    fserve.add_argument("--expect-workers", type=int, default=4,
                        metavar="N",
                        help="how many workers will join — sizes the "
                             "chunk plan (~4 chunks per worker) so "
                             "everyone gets work and a steal forfeits "
                             "little (default 4)")
    add_store_format_option(fserve)
    _add_fleet_tuning_options(fserve)
    _add_scenario_generator_options(fserve)
    fserve.set_defaults(func=_cmd_fleet_serve, workers=None)

    fjoin = fleet_sub.add_parser(
        "join", help="work for a coordinator until its sweep finishes")
    fjoin.add_argument("address", metavar="HOST:PORT",
                       help="coordinator address printed by fleet serve")
    fjoin.add_argument("--worker-id", default=None,
                       help="worker name (default: hostname-pid)")
    fjoin.add_argument("--reconnect-attempts", type=int, default=5,
                       help="lost sessions to survive before giving up "
                            "(seeded exponential backoff between tries)")
    fjoin.add_argument("--connect-timeout", type=float, default=10.0,
                       help="seconds to keep retrying the first connect")
    fjoin.set_defaults(func=_cmd_fleet_join)

    fstatus = fleet_sub.add_parser(
        "status", help="snapshot a running coordinator's progress")
    fstatus.add_argument("address", metavar="HOST:PORT",
                         help="coordinator address")
    fstatus.add_argument("--json", action="store_true",
                         help="emit the snapshot as JSON")
    fstatus.set_defaults(func=_cmd_fleet_status)

    fbench = fleet_sub.add_parser(
        "bench",
        help="measure fleet protocol overhead (synthetic records, no "
             "simulation): framing + ingest + merge records/s")
    fbench.add_argument("--records", type=int, default=2000,
                        help="synthetic records to push through the "
                             "protocol")
    fbench.add_argument("--workers", type=int, default=2,
                        help="synthetic TCP workers")
    fbench.add_argument("--chunk-size", type=int, default=None,
                        help="scenarios per lease (default: ~4 chunks "
                             "per worker)")
    fbench.add_argument("--store", default=None, metavar="DIR",
                        help="keep the merged store here (default: a "
                             "temporary directory, deleted)")
    add_store_format_option(fbench)
    fbench.add_argument("--json", action="store_true",
                        help="emit the measurements as JSON")
    fbench.set_defaults(func=_cmd_fleet_bench)

    return parser


def main(argv: "List[str] | None" = None) -> int:
    """Entry point; returns a process exit code."""
    from repro.obs import maybe_enable_from_env

    # REPRO_OBS=1 arms the span tracer for any subcommand; tracing is
    # observation-only, so fingerprints and digests stay bit-for-bit.
    maybe_enable_from_env()
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
