"""Assorted topology builders.

The paper notes Horse "is not restricted to DCs and can also be used
for other types of networks, e.g., Wide Area Networks" — these
builders cover the common shapes used by the examples, tests and
ablation benches.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.errors import TopologyError
from repro.topology.topo import GBPS, Topo


def linear_topo(
    num_switches: int,
    hosts_per_switch: int = 1,
    capacity_bps: float = GBPS,
    delay: float = 0.000_05,
) -> Topo:
    """A chain: s0 - s1 - ... with hosts hanging off each switch."""
    if num_switches < 1:
        raise TopologyError("need at least one switch")
    topo = Topo(name=f"linear-{num_switches}x{hosts_per_switch}")
    for index in range(num_switches):
        topo.add_switch(f"s{index}")
        for host_index in range(hosts_per_switch):
            name = f"h{index}_{host_index}"
            topo.add_host(name, f"10.0.{index}.{host_index + 10}")
            topo.add_link(name, f"s{index}", capacity_bps=capacity_bps, delay=delay)
    for index in range(num_switches - 1):
        topo.add_link(f"s{index}", f"s{index + 1}",
                      capacity_bps=capacity_bps, delay=delay)
    return topo


def star_topo(
    num_hosts: int, capacity_bps: float = GBPS, delay: float = 0.000_05
) -> Topo:
    """One switch, many hosts."""
    if num_hosts < 1:
        raise TopologyError("need at least one host")
    topo = Topo(name=f"star-{num_hosts}")
    topo.add_switch("s0")
    for index in range(num_hosts):
        name = f"h{index}"
        topo.add_host(name, f"10.0.0.{index + 10}")
        topo.add_link(name, "s0", capacity_bps=capacity_bps, delay=delay)
    return topo


def tree_topo(
    depth: int = 2,
    fanout: int = 2,
    capacity_bps: float = GBPS,
    delay: float = 0.000_05,
) -> Topo:
    """A complete switch tree with hosts at the leaves (Mininet's
    ``tree,depth,fanout``)."""
    if depth < 1 or fanout < 1:
        raise TopologyError("depth and fanout must be >= 1")
    topo = Topo(name=f"tree-d{depth}f{fanout}")
    counter = {"switch": 0, "host": 0}

    def build(level: int) -> str:
        node_id = counter["switch"]
        counter["switch"] += 1
        name = f"s{node_id}"
        topo.add_switch(name)
        for __ in range(fanout):
            if level + 1 < depth:
                child = build(level + 1)
            else:
                host_id = counter["host"]
                counter["host"] += 1
                child = f"h{host_id}"
                topo.add_host(child, f"10.0.{host_id // 250}.{host_id % 250 + 2}")
            topo.add_link(child, name, capacity_bps=capacity_bps, delay=delay)
        return name

    build(0)
    return topo


def leaf_spine_topo(
    num_spines: int = 2,
    num_leaves: int = 4,
    hosts_per_leaf: int = 4,
    capacity_bps: float = GBPS,
    delay: float = 0.000_05,
    device: str = "switch",
) -> Topo:
    """A two-tier Clos: every leaf connects to every spine.

    ``device="router"`` builds the same fabric out of routers (hosts
    get leaf gateways), suited to the static/BGP/OSPF control planes.
    """
    if num_spines < 1 or num_leaves < 1:
        raise TopologyError("need at least one spine and one leaf")
    if device not in ("switch", "router"):
        raise TopologyError(f"unknown leaf-spine device kind {device!r}")
    routers = device == "router"
    topo = Topo(name=f"leafspine-{num_spines}x{num_leaves}")

    def add_device(name: str) -> None:
        if routers:
            topo.add_router(name)
        else:
            topo.add_switch(name)

    for spine in range(num_spines):
        add_device(f"spine{spine}")
    for leaf in range(num_leaves):
        add_device(f"leaf{leaf}")
        for spine in range(num_spines):
            topo.add_link(f"leaf{leaf}", f"spine{spine}",
                          capacity_bps=capacity_bps, delay=delay)
        for host_index in range(hosts_per_leaf):
            name = f"h{leaf}_{host_index}"
            topo.add_host(name, f"10.{leaf}.0.{host_index + 10}",
                          gateway=f"10.{leaf}.0.1" if routers else None)
            topo.add_link(name, f"leaf{leaf}",
                          capacity_bps=capacity_bps, delay=delay)
    return topo


# (name, name, delay-ms) edges of a small continental WAN, loosely
# modelled on the Abilene/Internet2 research backbone.
_WAN_EDGES: List[Tuple[str, str, float]] = [
    ("seattle", "sunnyvale", 13.0),
    ("seattle", "denver", 20.0),
    ("sunnyvale", "losangeles", 6.0),
    ("sunnyvale", "denver", 15.0),
    ("losangeles", "houston", 20.0),
    ("denver", "kansascity", 8.0),
    ("kansascity", "houston", 10.0),
    ("kansascity", "indianapolis", 7.0),
    ("houston", "atlanta", 12.0),
    ("indianapolis", "chicago", 3.0),
    ("indianapolis", "atlanta", 9.0),
    ("chicago", "newyork", 12.0),
    ("atlanta", "washington", 8.0),
    ("newyork", "washington", 3.0),
]


def wan_topo(
    capacity_bps: float = 10 * GBPS, hosts_per_city: int = 1
) -> Topo:
    """A small WAN of routers with realistic propagation delays.

    Each city is a router with ``hosts_per_city`` hosts; suited to the
    BGP and OSPF examples (one AS per city for eBGP experiments).
    """
    topo = Topo(name="wan-abilene")
    cities = sorted({name for edge in _WAN_EDGES for name in edge[:2]})
    for index, city in enumerate(cities):
        topo.add_router(city, router_id=f"10.25{index // 250}.{index % 250}.1")
        for host_index in range(hosts_per_city):
            name = f"h_{city}" if hosts_per_city == 1 else f"h_{city}_{host_index}"
            topo.add_host(name, f"10.{index}.0.{host_index + 10}",
                          gateway=f"10.{index}.0.1")
            topo.add_link(name, city, capacity_bps=capacity_bps, delay=0.000_01)
    for a, b, delay_ms in _WAN_EDGES:
        topo.add_link(a, b, capacity_bps=capacity_bps, delay=delay_ms / 1000.0)
    return topo


def jellyfish_topo(
    num_switches: int = 20,
    ports_per_switch: int = 4,
    hosts_per_switch: int = 1,
    capacity_bps: float = GBPS,
    delay: float = 0.000_05,
    seed: int = 42,
) -> Topo:
    """A Jellyfish: a random regular graph of switches (SIGCOMM'12).

    Each switch reserves ``hosts_per_switch`` ports for hosts and uses
    the remaining ``ports_per_switch`` for the random fabric.  Built
    with networkx's random regular graph for a guaranteed simple
    ``ports_per_switch``-regular topology; deterministic per seed.
    """
    import networkx as nx

    if num_switches < ports_per_switch + 1:
        raise TopologyError(
            f"need more than {ports_per_switch} switches for degree "
            f"{ports_per_switch}"
        )
    if (num_switches * ports_per_switch) % 2:
        raise TopologyError("switches x fabric-ports must be even")
    graph = nx.random_regular_graph(ports_per_switch, num_switches, seed=seed)
    topo = Topo(name=f"jellyfish-{num_switches}x{ports_per_switch}")
    for index in range(num_switches):
        topo.add_switch(f"s{index}")
        for host_index in range(hosts_per_switch):
            name = f"h{index}_{host_index}"
            topo.add_host(name, f"10.{index // 250}.{index % 250}.{host_index + 2}")
            topo.add_link(name, f"s{index}",
                          capacity_bps=capacity_bps, delay=delay)
    for a, b in sorted(graph.edges()):
        topo.add_link(f"s{a}", f"s{b}", capacity_bps=capacity_bps, delay=delay)
    return topo


def wan_city_index(topo: Topo, city: str) -> int:
    """The index a city was assigned (its 10.<index>.0.0/24 subnet)."""
    cities = sorted(topo.routers())
    try:
        return cities.index(city)
    except ValueError:
        raise TopologyError(f"unknown city {city!r}") from None
