"""Declarative topology descriptions (Mininet's ``Topo`` idiom).

A :class:`Topo` only *describes* the network.  Realisation onto a
simulated :class:`~repro.dataplane.network.Network` (or onto the
baseline emulator, which has its own realiser) happens elsewhere, so
one description drives both tools in the Figure 3 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import TopologyError
from repro.netproto.addr import IPv4Address

GBPS = 1_000_000_000


@dataclass
class HostSpec:
    """A host to create."""

    name: str
    ip: str
    gateway: Optional[str] = None


@dataclass
class SwitchSpec:
    """A forwarding device to create: OpenFlow switch or router."""

    name: str
    kind: str = "switch"  # "switch" | "router"
    router_id: Optional[str] = None


@dataclass
class LinkSpec:
    """A link to create."""

    node_a: str
    node_b: str
    capacity_bps: float = GBPS
    delay: float = 0.000_05
    port_a: Optional[int] = None
    port_b: Optional[int] = None


class Topo:
    """An ordered collection of host/switch/link specifications."""

    def __init__(self, name: str = "topo"):
        self.name = name
        self.host_specs: Dict[str, HostSpec] = {}
        self.switch_specs: Dict[str, SwitchSpec] = {}
        self.link_specs: List[LinkSpec] = []

    # -- construction -----------------------------------------------------------

    def add_host(self, name: str, ip: str, gateway: "str | None" = None) -> str:
        """Describe a host; returns its name for chaining into links."""
        self._check_new(name)
        IPv4Address(ip)  # validate early
        self.host_specs[name] = HostSpec(name=name, ip=ip, gateway=gateway)
        return name

    def add_switch(self, name: str) -> str:
        """Describe an OpenFlow switch."""
        self._check_new(name)
        self.switch_specs[name] = SwitchSpec(name=name, kind="switch")
        return name

    def add_router(self, name: str, router_id: "str | None" = None) -> str:
        """Describe a router."""
        self._check_new(name)
        self.switch_specs[name] = SwitchSpec(
            name=name, kind="router", router_id=router_id
        )
        return name

    def add_link(
        self,
        node_a: str,
        node_b: str,
        capacity_bps: float = GBPS,
        delay: float = 0.000_05,
        port_a: "int | None" = None,
        port_b: "int | None" = None,
    ) -> LinkSpec:
        """Describe a link between two declared nodes."""
        for node in (node_a, node_b):
            if node not in self.host_specs and node not in self.switch_specs:
                raise TopologyError(f"link references unknown node {node!r}")
        spec = LinkSpec(
            node_a=node_a, node_b=node_b, capacity_bps=capacity_bps,
            delay=delay, port_a=port_a, port_b=port_b,
        )
        self.link_specs.append(spec)
        return spec

    def _check_new(self, name: str) -> None:
        if name in self.host_specs or name in self.switch_specs:
            raise TopologyError(f"duplicate node name {name!r}")

    # -- queries ------------------------------------------------------------------

    def hosts(self) -> List[str]:
        """Declared host names, in insertion order."""
        return list(self.host_specs)

    def switches(self) -> List[str]:
        """Declared switch names (kind == switch), in insertion order."""
        return [s.name for s in self.switch_specs.values() if s.kind == "switch"]

    def routers(self) -> List[str]:
        """Declared router names, in insertion order."""
        return [s.name for s in self.switch_specs.values() if s.kind == "router"]

    def node_count(self) -> int:
        """Total declared nodes."""
        return len(self.host_specs) + len(self.switch_specs)

    def link_count(self) -> int:
        """Total declared links."""
        return len(self.link_specs)

    # -- realisation ---------------------------------------------------------------

    def realize(self, network) -> None:
        """Create every described element on a simulated Network."""
        for host in self.host_specs.values():
            network.add_host(host.name, host.ip, host.gateway)
        for switch in self.switch_specs.values():
            if switch.kind == "router":
                network.add_router(switch.name, router_id=switch.router_id)
            else:
                network.add_switch(switch.name)
        for link in self.link_specs:
            network.add_link(
                link.node_a, link.node_b,
                capacity_bps=link.capacity_bps, delay=link.delay,
                port_a=link.port_a, port_b=link.port_b,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Topo {self.name!r} hosts={len(self.host_specs)} "
            f"devices={len(self.switch_specs)} links={len(self.link_specs)}>"
        )
