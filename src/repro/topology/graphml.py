"""GraphML topology importer (topology-zoo style files).

Loads a GraphML graph — the format the Internet Topology Zoo and most
academic topology datasets publish — into a :class:`Topo`: every
graph node becomes a router (optionally a switch), every edge a link,
and ``hosts_per_node`` hosts hang off each router with per-router /24
subnets and gateways, so the imported fabric is immediately usable
with the static/BGP/OSPF control planes and symmetry detection.

Only the stdlib XML parser is used; no schema validation beyond what
the import needs.  Namespaced and namespace-free documents both load
(tags are matched by local name).  Link capacity is taken from the
first of the ``LinkSpeedRaw`` / ``bandwidth`` / ``capacity_bps`` /
``capacity`` edge attributes that parses as a positive number, else
``default_capacity_bps``.  Node names come from the ``label``
attribute when present (sanitized to the identifier-ish charset the
rest of the stack expects), else the GraphML node id; collisions get
numeric suffixes deterministically.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.errors import TopologyError
from repro.topology.topo import GBPS, Topo

#: Edge attributes consulted for link capacity, in priority order.
_CAPACITY_ATTRS = ("LinkSpeedRaw", "bandwidth", "capacity_bps", "capacity")


def _local(tag: str) -> str:
    """Tag name with any ``{namespace}`` prefix stripped."""
    return tag.rsplit("}", 1)[-1]


def _sanitize(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() else "_" for ch in name.strip())
    cleaned = cleaned.strip("_")
    return cleaned or "node"


def parse_graphml(text: str) -> Tuple[str, List[str], List[Tuple[str, str, Optional[float]]]]:
    """Parse GraphML text into (graph name, node names, edges).

    Edges are ``(node_a, node_b, capacity_bps_or_None)`` with
    endpoints already translated to the sanitized, deduplicated node
    names.  Node order and edge order follow document order, so the
    resulting topology is deterministic for a given file.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise TopologyError(f"not parseable as GraphML: {exc}") from None
    if _local(root.tag) != "graphml":
        raise TopologyError(
            f"not a GraphML document (root element {_local(root.tag)!r})")

    # <key id="d33" for="node" attr.name="label"/> declarations.
    attr_names: Dict[str, str] = {}
    for element in root.iter():
        if _local(element.tag) == "key":
            key_id = element.get("id")
            name = element.get("attr.name")
            if key_id and name:
                attr_names[key_id] = name

    graph = next((el for el in root.iter() if _local(el.tag) == "graph"), None)
    if graph is None:
        raise TopologyError("GraphML document has no <graph> element")
    graph_name = graph.get("id") or "graphml"

    def data_attrs(element) -> Dict[str, str]:
        out = {}
        for child in element:
            if _local(child.tag) == "data":
                name = attr_names.get(child.get("key", ""), child.get("key"))
                if name is not None and child.text is not None:
                    out[name] = child.text
        return out

    names: List[str] = []
    by_id: Dict[str, str] = {}
    used: Dict[str, int] = {}
    for element in graph:
        if _local(element.tag) != "node":
            continue
        node_id = element.get("id")
        if node_id is None:
            raise TopologyError("GraphML node without an id")
        label = data_attrs(element).get("label") or node_id
        name = _sanitize(label)
        count = used.get(name, 0)
        used[name] = count + 1
        if count:
            name = f"{name}_{count + 1}"
        by_id[node_id] = name
        names.append(name)
    if not names:
        raise TopologyError("GraphML graph has no nodes")

    edges: List[Tuple[str, str, Optional[float]]] = []
    for element in graph:
        if _local(element.tag) != "edge":
            continue
        source = element.get("source")
        target = element.get("target")
        if source not in by_id or target not in by_id:
            raise TopologyError(
                f"GraphML edge references unknown node "
                f"{source!r} or {target!r}")
        if source == target:
            continue  # self-loops carry no forwarding meaning here
        capacity: Optional[float] = None
        attrs = data_attrs(element)
        for attr in _CAPACITY_ATTRS:
            raw = attrs.get(attr)
            if raw is None:
                continue
            try:
                value = float(raw)
            except ValueError:
                continue
            if value > 0:
                capacity = value
                break
        edges.append((by_id[source], by_id[target], capacity))
    return graph_name, names, edges


def graphml_topo(
    path: str,
    hosts_per_node: int = 1,
    default_capacity_bps: float = GBPS,
    delay: float = 0.000_05,
    device: str = "router",
) -> Topo:
    """Build a :class:`Topo` from a GraphML file on disk.

    Registered as the ``graphml`` topology recipe kind, so a scenario
    spec can point straight at a topology-zoo file::

        {"kind": "graphml", "params": {"path": "tests/data/ring4.graphml"}}
    """
    if hosts_per_node < 0:
        raise TopologyError("hosts_per_node must be >= 0")
    if device not in ("router", "switch"):
        raise TopologyError(f"unknown graphml device kind {device!r}")
    file_path = Path(path)
    try:
        text = file_path.read_text()
    except OSError as exc:
        raise TopologyError(f"cannot read GraphML file {path!r}: {exc}") from None
    graph_name, names, edges = parse_graphml(text)

    topo = Topo(name=f"graphml-{_sanitize(graph_name).lower()}")
    for index, name in enumerate(names):
        if device == "router":
            topo.add_router(name)
        else:
            topo.add_switch(name)
        subnet = f"10.{index >> 8}.{index & 255}"
        for host_index in range(hosts_per_node):
            host = f"h_{name}_{host_index}"
            topo.add_host(
                host, f"{subnet}.{host_index + 2}",
                gateway=f"{subnet}.1" if device == "router" else None)
            topo.add_link(host, name,
                          capacity_bps=default_capacity_bps, delay=delay)
    for node_a, node_b, capacity in edges:
        topo.add_link(node_a, node_b,
                      capacity_bps=capacity or default_capacity_bps,
                      delay=delay)
    return topo
