"""Topology descriptions and builders.

A :class:`~repro.topology.topo.Topo` is a declarative description
(hosts, switches/routers, links) that can be *realised* either on the
Horse data plane (:class:`~repro.dataplane.network.Network`) or on the
packet-level baseline emulator — the same experiment script runs on
both, which is what the Figure 3 comparison needs.

:class:`~repro.topology.fattree.FatTreeTopo` builds the k-ary fat-tree
of Al-Fares et al. used by the demonstration (k = 4, 6, 8 pods).
"""

from repro.topology.topo import Topo, HostSpec, SwitchSpec, LinkSpec
from repro.topology.fattree import FatTreeTopo
from repro.topology.builders import (
    linear_topo,
    star_topo,
    tree_topo,
    leaf_spine_topo,
    wan_topo,
    jellyfish_topo,
)

__all__ = [
    "Topo",
    "HostSpec",
    "SwitchSpec",
    "LinkSpec",
    "FatTreeTopo",
    "linear_topo",
    "star_topo",
    "tree_topo",
    "leaf_spine_topo",
    "wan_topo",
    "jellyfish_topo",
]
