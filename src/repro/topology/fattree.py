"""The k-ary fat-tree of Al-Fares et al. (SIGCOMM 2008).

The demonstration's topology: k pods, each with k/2 edge and k/2
aggregation switches; (k/2)² core switches; k²/4 hosts per pod
(k³/4 total).  All links have the same capacity (1 Gbps in the demo).

Addressing follows the paper: host i on edge switch e of pod p gets
``10.p.e.(i+2)``.  For the BGP variant (``device="router"``) every
switch becomes a router with its own AS number, RFC 7938-style:

* every edge and aggregation router gets a per-device AS;
* core routers share one AS (they never need to distinguish paths
  among themselves);
* edge routers originate their host subnet ``10.p.e.0/24``.

The class also exposes the structural metadata experiments need:
layers, pods, host subnets, and AS numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.errors import TopologyError
from repro.topology.topo import GBPS, Topo


@dataclass(frozen=True)
class FatTreeHostInfo:
    """Metadata for one host."""

    name: str
    ip: str
    pod: int
    edge_index: int
    host_index: int
    edge_switch: str


class FatTreeTopo(Topo):
    """A k-ary fat-tree description."""

    CORE_ASN = 65000

    def __init__(
        self,
        k: int = 4,
        capacity_bps: float = GBPS,
        delay: float = 0.000_05,
        device: str = "switch",
    ):
        if k < 2 or k % 2:
            raise TopologyError(f"fat-tree k must be even and >= 2, got {k}")
        if device not in ("switch", "router"):
            raise TopologyError(f"device must be 'switch' or 'router', got {device!r}")
        super().__init__(name=f"fattree-k{k}-{device}")
        self.k = k
        self.device = device
        self.capacity_bps = capacity_bps
        self.delay = delay
        half = k // 2

        self.core_switches: List[str] = []
        self.agg_switches: List[str] = []
        self.edge_switches: List[str] = []
        self.host_info: List[FatTreeHostInfo] = []
        self.asn: Dict[str, int] = {}
        self.host_subnet: Dict[str, str] = {}  # edge switch -> originated /24

        # Core layer: (k/2)^2 switches in k/2 groups of k/2.  Core (g, i)
        # gets address 10.k.g+1.i+1 per the Al-Fares addressing scheme.
        for group in range(half):
            for index in range(half):
                name = f"c{group}_{index}"
                self._add_device(name, router_id=f"10.{k}.{group + 1}.{index + 1}")
                self.core_switches.append(name)
                self.asn[name] = self.CORE_ASN

        # Pods.
        next_asn = 65001
        for pod in range(k):
            pod_aggs: List[str] = []
            pod_edges: List[str] = []
            for index in range(half):
                agg = f"a{pod}_{index}"
                self._add_device(agg, router_id=f"10.{pod}.{half + index}.1")
                self.agg_switches.append(agg)
                pod_aggs.append(agg)
                self.asn[agg] = next_asn
                next_asn += 1
            for index in range(half):
                edge = f"e{pod}_{index}"
                self._add_device(edge, router_id=f"10.{pod}.{index}.1")
                self.edge_switches.append(edge)
                pod_edges.append(edge)
                self.asn[edge] = next_asn
                next_asn += 1
                self.host_subnet[edge] = f"10.{pod}.{index}.0/24"

            # Hosts: k/2 per edge switch.
            for edge_index, edge in enumerate(pod_edges):
                for host_index in range(half):
                    host = f"h{pod}_{edge_index}_{host_index}"
                    ip = f"10.{pod}.{edge_index}.{host_index + 2}"
                    gateway = f"10.{pod}.{edge_index}.1"
                    self.add_host(host, ip, gateway)
                    self.host_info.append(
                        FatTreeHostInfo(
                            name=host, ip=ip, pod=pod,
                            edge_index=edge_index, host_index=host_index,
                            edge_switch=edge,
                        )
                    )
                    self.add_link(host, edge,
                                  capacity_bps=capacity_bps, delay=delay)

            # Edge <-> aggregation full bipartite mesh within the pod.
            for edge in pod_edges:
                for agg in pod_aggs:
                    self.add_link(edge, agg,
                                  capacity_bps=capacity_bps, delay=delay)

            # Aggregation <-> core: agg j connects to core group j.
            for agg_index, agg in enumerate(pod_aggs):
                for core_index in range(half):
                    core = f"c{agg_index}_{core_index}"
                    self.add_link(agg, core,
                                  capacity_bps=capacity_bps, delay=delay)

    def _add_device(self, name: str, router_id: str) -> None:
        if self.device == "router":
            self.add_router(name, router_id=router_id)
        else:
            self.add_switch(name)

    # -- structural queries -------------------------------------------------------

    @property
    def num_hosts(self) -> int:
        """k^3 / 4."""
        return self.k ** 3 // 4

    @property
    def num_switches(self) -> int:
        """5k^2 / 4 (core + agg + edge)."""
        return 5 * self.k ** 2 // 4

    def hosts_in_pod(self, pod: int) -> List[FatTreeHostInfo]:
        """Host metadata for one pod."""
        return [info for info in self.host_info if info.pod == pod]

    def layer_of(self, name: str) -> str:
        """'core', 'agg', 'edge' or 'host'."""
        if name in self.host_specs:
            return "host"
        prefix = name[0]
        return {"c": "core", "a": "agg", "e": "edge"}.get(prefix, "unknown")

    def expected_bisection_bps(self) -> float:
        """Full bisection bandwidth: every host can send at line rate."""
        return self.num_hosts * self.capacity_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FatTreeTopo k={self.k} device={self.device} "
            f"hosts={self.num_hosts} switches={self.num_switches}>"
        )
