"""The persisted result record: what one scenario run leaves behind.

A *record* is the self-describing JSON object a
:class:`~repro.results.store.ResultStore` appends for every finished
scenario: the spec that was run (plus its canonical hash), the seed,
the result's bit-for-bit fingerprint, the flattened metrics an SLO or
a CSV column can address by name, the SLO verdicts, and free-form
diagnostics.  Everything a later reader needs to aggregate, re-check
or re-run the scenario is inside the record — no side tables, no
in-memory campaign object.

This module deliberately knows nothing about live scenario objects
(no :mod:`repro.scenarios` import): records are plain dicts so the
results layer stays importable from the spec layer without cycles.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Tuple

#: Version of the persisted result schema.  v1 was the implicit PR 1
#: ``ScenarioResult.to_dict`` shape; v2 adds ``control_messages`` /
#: ``control_bytes``, the ``slos`` verdict list and the (fingerprint-
#: excluded) ``diagnostics`` blob.
RESULT_SCHEMA_VERSION = 2

#: Result-payload fields that are non-deterministic between identical
#: runs and therefore excluded from EVERY equality surface —
#: ``ScenarioResult`` equality, ``result_fingerprint``,
#: ``ResultStore.canonical_digest`` and ``diff_stores``.  One list so
#: a new volatile field (say, peak RSS) cannot be excluded in one
#: place and reported as divergence in another.
VOLATILE_RESULT_FIELDS = ("wall_seconds", "diagnostics")

#: Same exclusion for the flat metric view (`scenario_metrics`).
VOLATILE_METRIC_FIELDS = ("wall_seconds",)


def canonical_json(payload: Any) -> str:
    """The one serialized form used for hashing: sorted keys, no
    whitespace variance."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_hash(spec_dict: Dict[str, Any]) -> str:
    """Stable digest of a serialized spec — the identity half of the
    (spec, seed) resume key.  Hashes the canonical JSON of the full
    spec dict, so any change to topology, protocol, traffic,
    injections, SLOs or duration yields a different hash."""
    return hashlib.sha256(canonical_json(spec_dict).encode()).hexdigest()[:16]


def record_key(record: Dict[str, Any]) -> Tuple[str, int]:
    """The (spec_hash, seed) identity of a persisted record."""
    return (record["spec_hash"], record["seed"])


def make_record(
    spec_dict: Dict[str, Any],
    result_dict: Dict[str, Any],
    fingerprint: str,
    metrics: Dict[str, Any],
) -> Dict[str, Any]:
    """Assemble the self-describing record for one finished scenario.

    ``result_dict`` is the full :meth:`ScenarioResult.to_dict` payload
    (which itself carries the SLO verdicts and diagnostics);
    ``metrics`` is the flat name->number view from
    :func:`repro.api.metrics.scenario_metrics`.
    """
    return {
        "schema_version": RESULT_SCHEMA_VERSION,
        "spec_hash": spec_hash(spec_dict),
        "seed": spec_dict.get("seed", result_dict.get("seed", 0)),
        "name": result_dict.get("name", spec_dict.get("name", "")),
        "fingerprint": fingerprint,
        "spec": spec_dict,
        "result": result_dict,
        "metrics": metrics,
    }


def record_slos(record: Dict[str, Any]) -> list:
    """The SLO verdict dicts of a record (they live inside the result
    payload — the record stores exactly one copy)."""
    return record.get("result", {}).get("slos", [])


def record_diagnostics(record: Dict[str, Any]) -> Dict[str, Any]:
    """The diagnostics blob of a record."""
    return record.get("result", {}).get("diagnostics", {})


def record_error(record: Dict[str, Any]) -> "str | None":
    """The error string of a scenario that died mid-run, else None."""
    return record_diagnostics(record).get("error")
