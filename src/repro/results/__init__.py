"""The results subsystem: durable, streaming, judgeable sweeps.

Horse's value is running *many* control-plane experiments fast; this
package is where their results go once the scenario engine has
produced them:

* :mod:`~repro.results.records`   — the self-describing persisted
  record (schema version, spec + hash, seed, fingerprint, flat
  metrics, SLO verdicts, diagnostics);
* :mod:`~repro.results.store`     — :class:`ResultStore`, an
  append-only JSONL store with an index sidecar: streaming writes,
  O(1) "has (spec, seed) run?" lookups, crash-tolerant resume;
* :mod:`~repro.results.columnar`  — the same API over numpy-backed
  columnar segments (:mod:`~repro.results.segment`) for
  million-record campaigns: mmap'd metric columns, segment-level
  merges, format auto-detection and JSONL↔columnar conversion;
* :mod:`~repro.results.slo`       — declarative SLO assertions
  (``converged_within``, ``max_recovery_time``,
  ``min_delivered_fraction``, ``max_control_messages``, custom metric
  expressions) evaluated inside the runner so every record carries
  pass/fail verdicts;
* :mod:`~repro.results.aggregate` — percentile/mean rollups, CSV
  export and the text report behind ``repro campaign report|check``.

Quickstart::

    from repro.results import ResultStore
    from repro.scenarios import Campaign, generate_scenario

    store = ResultStore("sweep_store")
    campaign = Campaign.seed_sweep(generate_scenario, range(1000),
                                   workers=8)
    campaign.run(store=store)          # killed halfway? just re-run:
    campaign.run(store=store)          # only the remaining seeds run
"""

from repro.results.records import (
    RESULT_SCHEMA_VERSION,
    canonical_json,
    make_record,
    record_key,
    spec_hash,
)
from repro.results.slo import (
    SLO,
    SLO_KINDS,
    ConvergedWithin,
    MaxControlMessages,
    MaxRecoveryTime,
    MetricExpression,
    MinDeliveredFraction,
    SLOVerdict,
    evaluate_expression,
    evaluate_slos,
    slo_from_dict,
    slo_from_kv,
)
from repro.results.store import (
    IndexEntry,
    ResultStore,
    list_shards,
    shard_store_name,
)
from repro.results.columnar import (
    ColumnarResultStore,
    convert_store,
    is_columnar_store,
)
from repro.results.diff import DiffEntry, StoreDiff, diff_stores
from repro.results.aggregate import (
    MetricRollup,
    SLOTally,
    StoreAggregate,
    aggregate_records,
    flatten_csv_row,
    percentile,
    write_csv,
    write_csv_rows,
)

__all__ = [
    "RESULT_SCHEMA_VERSION",
    "canonical_json",
    "make_record",
    "record_key",
    "spec_hash",
    "SLO",
    "SLO_KINDS",
    "ConvergedWithin",
    "MaxRecoveryTime",
    "MinDeliveredFraction",
    "MaxControlMessages",
    "MetricExpression",
    "SLOVerdict",
    "evaluate_expression",
    "evaluate_slos",
    "slo_from_dict",
    "slo_from_kv",
    "ResultStore",
    "ColumnarResultStore",
    "IndexEntry",
    "convert_store",
    "is_columnar_store",
    "list_shards",
    "shard_store_name",
    "DiffEntry",
    "StoreDiff",
    "diff_stores",
    "MetricRollup",
    "SLOTally",
    "StoreAggregate",
    "aggregate_records",
    "flatten_csv_row",
    "percentile",
    "write_csv",
    "write_csv_rows",
]
