"""Rollups, CSV export and text reports over a result store.

The consumers of a big sweep never want the records themselves — they
want *"p99 convergence across 10 000 seeds"*, *"which SLOs failed"*, a
CSV for the plotting notebook.  Everything here reads records as a
stream (one line in memory at a time for CSV; per-metric value lists
for percentiles, a few floats per record) so report generation scales
with the store like the store itself does.
"""

from __future__ import annotations

import csv
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.results.records import record_error, record_slos
from repro.results.slo import ERROR, FAIL, PASS

#: The metrics the rollup computes percentiles over (when present).
ROLLUP_METRICS = (
    "convergence_time",
    "delivered_fraction",
    "max_recovery_seconds",
    "mean_recovery_seconds",
    "control_messages",
    "events_fired",
    "recomputations",
    "wall_seconds",
)

PERCENTILES = (50.0, 90.0, 99.0)

#: Generated scenario names look like ``flap-storm-seed17``; the wall
#: time section groups seeds of one scenario into a *family* so slow
#: scenarios surface as one row, not one row per seed.
_SEED_SUFFIX = re.compile(r"-seed\d+$")

#: Rows shown in the per-scenario wall time section (slowest first).
WALL_SECTION_LIMIT = 12


def scenario_family(name: str) -> str:
    """Strip the generator's ``-seed<N>`` suffix (identity otherwise)."""
    return _SEED_SUFFIX.sub("", name)


def percentile(values: List[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of a
    *sorted* non-empty list — the numpy default, dependency-free."""
    if not values:
        raise ValueError("percentile of empty list")
    if len(values) == 1:
        return values[0]
    rank = (q / 100.0) * (len(values) - 1)
    low = int(rank)
    high = min(low + 1, len(values) - 1)
    weight = rank - low
    return values[low] * (1.0 - weight) + values[high] * weight


@dataclass
class MetricRollup:
    """count / mean / min / max / percentiles of one metric."""

    name: str
    values: List[float] = field(default_factory=list)

    def add(self, value: Any) -> None:
        if isinstance(value, bool) or value is None:
            return
        if isinstance(value, (int, float)):
            self.values.append(float(value))

    def stats(self) -> Optional[Dict[str, float]]:
        if not self.values:
            return None
        ordered = sorted(self.values)
        out = {
            "count": float(len(ordered)),
            "mean": sum(ordered) / len(ordered),
            "min": ordered[0],
            "max": ordered[-1],
        }
        for q in PERCENTILES:
            out[f"p{q:g}"] = percentile(ordered, q)
        return out


@dataclass
class SLOTally:
    """pass/fail/error counts for one SLO label across a store."""

    label: str
    passed: int = 0
    failed: int = 0
    errored: int = 0

    @property
    def total(self) -> int:
        return self.passed + self.failed + self.errored

    @property
    def ok(self) -> bool:
        return self.failed == 0 and self.errored == 0


@dataclass
class StoreAggregate:
    """Everything the report/check commands need, computed in one
    streaming pass over a store's records."""

    records: int = 0
    errors: int = 0                     # scenarios that died mid-run
    converged: int = 0
    metric_rollups: Dict[str, MetricRollup] = field(default_factory=dict)
    slo_tallies: Dict[str, SLOTally] = field(default_factory=dict)
    # family -> wall_seconds values (healthy records only).
    scenario_walls: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def slo_failures(self) -> int:
        return sum(t.failed for t in self.slo_tallies.values())

    @property
    def slo_errors(self) -> int:
        return sum(t.errored for t in self.slo_tallies.values())

    @property
    def gate_ok(self) -> bool:
        """The regression-gate answer: no SLO failed, no SLO (or
        scenario) errored."""
        return (self.slo_failures == 0 and self.slo_errors == 0
                and self.errors == 0)

    def add(self, record: Dict[str, Any]) -> None:
        self.records += 1
        metrics = record.get("metrics", {})
        errored = record_error(record) is not None
        if errored:
            self.errors += 1
        if metrics.get("converged"):
            self.converged += 1
        if not errored:
            # An errored scenario measured nothing: its zero-default
            # metrics would skew every percentile toward "healthy".
            for name in ROLLUP_METRICS:
                if name in metrics:
                    self.metric_rollups.setdefault(
                        name, MetricRollup(name)).add(metrics[name])
            wall = metrics.get("wall_seconds")
            if isinstance(wall, (int, float)) and not isinstance(wall, bool):
                family = scenario_family(str(record.get("name", "")))
                self.scenario_walls.setdefault(family, []).append(
                    float(wall))
        for verdict in record_slos(record):
            tally = self.slo_tallies.setdefault(
                verdict["slo"], SLOTally(verdict["slo"]))
            if verdict["status"] == PASS:
                tally.passed += 1
            elif verdict["status"] == FAIL:
                tally.failed += 1
            elif verdict["status"] == ERROR:
                tally.errored += 1

    def report(self) -> str:
        """The multi-line text report ``repro campaign report`` prints."""
        lines = [f"{self.records} record(s), {self.converged} converged, "
                 f"{self.errors} scenario error(s)"]
        if self.metric_rollups:
            lines.append("")
            lines.append(f"{'metric':<24} {'count':>6} {'mean':>12} "
                         f"{'p50':>12} {'p90':>12} {'p99':>12} {'max':>12}")
            for name in ROLLUP_METRICS:
                rollup = self.metric_rollups.get(name)
                stats = rollup.stats() if rollup else None
                if stats is None:
                    continue
                lines.append(
                    f"{name:<24} {stats['count']:>6.0f} {stats['mean']:>12.4f} "
                    f"{stats['p50']:>12.4f} {stats['p90']:>12.4f} "
                    f"{stats['p99']:>12.4f} {stats['max']:>12.4f}")
        wall_lines = self.wall_time_lines()
        if wall_lines:
            lines.append("")
            lines.extend(wall_lines)
        if self.slo_tallies:
            lines.append("")
            lines.append(f"{'SLO':<44} {'pass':>6} {'fail':>6} {'error':>6}")
            for label in sorted(self.slo_tallies):
                tally = self.slo_tallies[label]
                lines.append(f"{label:<44} {tally.passed:>6} "
                             f"{tally.failed:>6} {tally.errored:>6}")
            verdict = "OK" if self.gate_ok else "FAILING"
            lines.append(f"gate: {verdict} ({self.gate_detail()})")
        return "\n".join(lines)

    def wall_time_percentiles(self) -> "List[Dict[str, Any]]":
        """Per-scenario-family wall time: count, p50/p95/max seconds,
        slowest (by p95) first."""
        rows = []
        for family, values in self.scenario_walls.items():
            ordered = sorted(values)
            rows.append({
                "scenario": family,
                "count": len(ordered),
                "p50_s": percentile(ordered, 50.0),
                "p95_s": percentile(ordered, 95.0),
                "max_s": ordered[-1],
            })
        rows.sort(key=lambda r: (-r["p95_s"], r["scenario"]))
        return rows

    def wall_time_lines(self) -> List[str]:
        """The wall-time section of the text report (slowest first)."""
        rows = self.wall_time_percentiles()
        if not rows:
            return []
        lines = [f"{'scenario wall time':<36} {'runs':>6} {'p50_s':>10} "
                 f"{'p95_s':>10} {'max_s':>10}"]
        for r in rows[:WALL_SECTION_LIMIT]:
            lines.append(
                f"{r['scenario']:<36} {r['count']:>6} {r['p50_s']:>10.4f} "
                f"{r['p95_s']:>10.4f} {r['max_s']:>10.4f}")
        hidden = len(rows) - WALL_SECTION_LIMIT
        if hidden > 0:
            lines.append(f"(+{hidden} faster scenario(s) not shown)")
        return lines

    def gate_detail(self) -> str:
        """The gate tally, without double-counting: errored scenarios
        and their per-SLO error verdicts are distinct figures."""
        return (f"{self.slo_failures} SLO failure(s), "
                f"{self.slo_errors} SLO error verdict(s), "
                f"{self.errors} errored scenario(s)")


def aggregate_records(records: Iterable[Dict[str, Any]]) -> StoreAggregate:
    """One streaming pass: records in, :class:`StoreAggregate` out."""
    aggregate = StoreAggregate()
    for record in records:
        aggregate.add(record)
    return aggregate


# -- CSV export ------------------------------------------------------------

_CSV_ID_COLUMNS = ("name", "seed", "spec_hash", "fingerprint",
                   "schema_version")


def flatten_csv_row(
    ids: Dict[str, Any],
    metrics: Dict[str, Any],
    slos: "Iterable[Tuple[str, str]]",
    error: "Optional[str]",
) -> "Tuple[Dict[str, Any], List[str]]":
    """Flatten one scenario into (row, column names in source order)
    from its parts — id fields, the flat metrics dict, (label, status)
    verdict pairs and the error string.  Stores that keep these parts
    in columns (see ``ColumnarResultStore.iter_csv_rows``) can build
    rows without reassembling a record."""
    row: Dict[str, Any] = {col: ids.get(col, "")
                           for col in _CSV_ID_COLUMNS}
    columns = list(_CSV_ID_COLUMNS)
    for name, value in sorted(metrics.items()):
        column = f"metric.{name}"
        row[column] = value
        columns.append(column)
    for label, status in slos:
        column = f"slo.{label}"
        row[column] = status
        columns.append(column)
    row["error"] = error or ""
    columns.append("error")
    return row, columns


def _csv_row(record: Dict[str, Any]) -> "Tuple[Dict[str, Any], List[str]]":
    """Flatten one record into (row, column names in record order)."""
    return flatten_csv_row(
        record,
        record.get("metrics", {}),
        [(verdict["slo"], verdict["status"])
         for verdict in record_slos(record)],
        record_error(record))


def write_csv_rows(
    rows_and_columns: "Iterable[Tuple[Dict[str, Any], List[str]]]",
    path: str,
) -> int:
    """Write pre-flattened (row, columns) pairs — the shape
    :func:`flatten_csv_row` produces and ``store.iter_csv_rows()``
    yields — to a CSV; returns the row count.

    Two streaming passes would be needed to union columns up front; we
    instead buffer only the *rows* (flat dicts of numbers — tiny next
    to the records) and write once the header is known.
    """
    rows: List[Dict[str, Any]] = []
    columns: List[str] = []
    seen = set()
    for row, row_columns in rows_and_columns:
        rows.append(row)
        for column in row_columns:
            if column not in seen:
                seen.add(column)
                columns.append(column)
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return len(rows)


def write_csv(records: Iterable[Dict[str, Any]], path: str) -> int:
    """Export records to a flat CSV (one row per scenario); returns
    the row count."""
    return write_csv_rows((_csv_row(record) for record in records), path)
