"""Declarative SLO assertions evaluated inside the scenario runner.

An :class:`SLO` is a predicate over a scenario's flat metrics
(:func:`repro.api.metrics.scenario_metrics`): *did the control plane
converge within 20 s*, *did every outage recover within 10 s*, *was at
least 95 % of demanded traffic delivered*, *did convergence cost fewer
than 5 000 control messages* — or any custom expression over metric
names.  SLOs ride the :class:`~repro.scenarios.spec.ScenarioSpec`
(JSON round-trippable like everything else there), the runner
evaluates them as part of every run, and each persisted record carries
the verdicts — so a seeded sweep doubles as a regression gate for
controller changes (``repro campaign check``).

Verdict statuses: ``pass`` / ``fail`` from a real evaluation,
``error`` when the scenario itself died or the expression could not be
evaluated — an errored verdict fails a gate just like a failed one.
"""

from __future__ import annotations

import ast
import operator
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.errors import ConfigurationError

PASS = "pass"
FAIL = "fail"
ERROR = "error"


@dataclass
class SLOVerdict:
    """The outcome of one SLO against one scenario's metrics."""

    slo: str                      # the SLO's label, e.g. "converged_within<=20"
    kind: str                     # the SLO kind that produced it
    status: str                   # "pass" | "fail" | "error"
    observed: Optional[float] = None
    threshold: Optional[float] = None
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.status == PASS

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.slo,
            "kind": self.kind,
            "status": self.status,
            "observed": self.observed,
            "threshold": self.threshold,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SLOVerdict":
        return cls(
            slo=data["slo"],
            kind=data["kind"],
            status=data["status"],
            observed=data.get("observed"),
            threshold=data.get("threshold"),
            detail=data.get("detail", ""),
        )


@dataclass
class SLO:
    """Base predicate: subclasses define ``kind`` and :meth:`check`."""

    kind = "abstract"

    def label(self) -> str:
        raise NotImplementedError

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsense thresholds."""

    def check(self, metrics: Dict[str, Any]) -> SLOVerdict:
        raise NotImplementedError

    def evaluate(self, metrics: Dict[str, Any]) -> SLOVerdict:
        """Check, demoting any evaluation blow-up to an ``error``
        verdict instead of killing the run.

        The detail names only the exception *type*: verdicts are
        fingerprint-covered and exception message wording varies
        across Python versions (a full repr would make the same run
        fingerprint differently on different interpreters).
        """
        try:
            return self.check(metrics)
        except Exception as exc:  # noqa: BLE001 - verdicts must not raise
            return SLOVerdict(slo=self.label(), kind=self.kind, status=ERROR,
                              detail=f"evaluation error: "
                                     f"{type(exc).__name__}")

    def error_verdict(self, message: str) -> SLOVerdict:
        """The verdict for a scenario that never produced metrics."""
        return SLOVerdict(slo=self.label(), kind=self.kind, status=ERROR,
                          detail=message)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize as {kind, <threshold field>} — every concrete SLO
        has exactly one tunable, named in ``_SLO_FIELDS``."""
        field_name = _SLO_FIELDS[self.kind]
        return {"kind": self.kind, field_name: getattr(self, field_name)}


def _status(passed: bool) -> str:
    return PASS if passed else FAIL


@dataclass
class ConvergedWithin(SLO):
    """The control plane converged, and no later than ``seconds``."""

    seconds: float = 20.0
    kind = "converged_within"

    def label(self) -> str:
        return f"converged_within<={self.seconds:g}s"

    def validate(self) -> None:
        if self.seconds <= 0:
            raise ConfigurationError(
                f"converged_within needs a positive bound, got {self.seconds}")

    def check(self, metrics: Dict[str, Any]) -> SLOVerdict:
        converged = bool(metrics.get("converged"))
        observed = metrics.get("convergence_time")
        if not converged:
            return SLOVerdict(self.label(), self.kind, FAIL,
                              observed=None, threshold=self.seconds,
                              detail="never converged")
        # A protocol-less scenario reports converged with no timestamp:
        # trivially within any bound.
        passed = observed is None or observed <= self.seconds
        return SLOVerdict(self.label(), self.kind, _status(passed),
                          observed=observed, threshold=self.seconds)


@dataclass
class MaxRecoveryTime(SLO):
    """Every injected disruption recovered, each within ``seconds``."""

    seconds: float = 10.0
    kind = "max_recovery_time"

    def label(self) -> str:
        return f"max_recovery_time<={self.seconds:g}s"

    def validate(self) -> None:
        if self.seconds <= 0:
            raise ConfigurationError(
                f"max_recovery_time needs a positive bound, "
                f"got {self.seconds}")

    def check(self, metrics: Dict[str, Any]) -> SLOVerdict:
        unrecovered = int(metrics.get("unrecovered_count") or 0)
        worst = metrics.get("max_recovery_seconds")
        if unrecovered:
            return SLOVerdict(self.label(), self.kind, FAIL,
                              observed=worst, threshold=self.seconds,
                              detail=f"{unrecovered} disruption(s) "
                                     f"never recovered")
        passed = worst is None or worst <= self.seconds
        return SLOVerdict(self.label(), self.kind, _status(passed),
                          observed=worst, threshold=self.seconds)


@dataclass
class MinDeliveredFraction(SLO):
    """At least ``fraction`` of demanded bytes were delivered."""

    fraction: float = 0.95
    kind = "min_delivered_fraction"

    def label(self) -> str:
        return f"delivered_fraction>={self.fraction:g}"

    def validate(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(
                f"min_delivered_fraction needs a fraction in (0, 1], "
                f"got {self.fraction}")

    def check(self, metrics: Dict[str, Any]) -> SLOVerdict:
        observed = float(metrics.get("delivered_fraction") or 0.0)
        return SLOVerdict(self.label(), self.kind,
                          _status(observed >= self.fraction),
                          observed=observed, threshold=self.fraction)


@dataclass
class MaxControlMessages(SLO):
    """The control plane used at most ``count`` messages."""

    count: int = 10_000
    kind = "max_control_messages"

    def label(self) -> str:
        return f"control_messages<={self.count}"

    def validate(self) -> None:
        if self.count < 0:
            raise ConfigurationError(
                f"max_control_messages needs a non-negative count, "
                f"got {self.count}")

    def check(self, metrics: Dict[str, Any]) -> SLOVerdict:
        observed = int(metrics.get("control_messages") or 0)
        return SLOVerdict(self.label(), self.kind,
                          _status(observed <= self.count),
                          observed=observed, threshold=float(self.count))


# -- the custom-expression SLO and its safe evaluator ----------------------

#: No ast.Pow: unbounded ** lets a spec file freeze a worker with an
#: astronomically large integer — nothing an SLO needs.
_BIN_OPS: Dict[type, Callable[[Any, Any], Any]] = {
    ast.Add: operator.add,
    ast.Sub: operator.sub,
    ast.Mult: operator.mul,
    ast.Div: operator.truediv,
    ast.Mod: operator.mod,
}

_CMP_OPS: Dict[type, Callable[[Any, Any], bool]] = {
    ast.Lt: operator.lt,
    ast.LtE: operator.le,
    ast.Gt: operator.gt,
    ast.GtE: operator.ge,
    ast.Eq: operator.eq,
    ast.NotEq: operator.ne,
}

_FUNCS: Dict[str, Callable[..., Any]] = {
    "abs": abs, "min": min, "max": max, "round": round,
}


def _eval_node(node: ast.AST, names: Dict[str, Any]) -> Any:
    """Recursive evaluator over the tiny allowed AST subset:
    arithmetic, comparisons, and/or/not, numeric literals, metric
    names, and abs/min/max/round calls.  Anything else raises."""
    if isinstance(node, ast.Expression):
        return _eval_node(node.body, names)
    if isinstance(node, ast.Constant):
        if isinstance(node.value, (int, float, bool)) or node.value is None:
            return node.value
        raise ConfigurationError(
            f"literal {node.value!r} not allowed in SLO expression")
    if isinstance(node, ast.Name):
        if node.id not in names:
            raise ConfigurationError(
                f"unknown metric {node.id!r} in SLO expression")
        return names[node.id]
    if isinstance(node, ast.BinOp) and type(node.op) in _BIN_OPS:
        return _BIN_OPS[type(node.op)](_eval_node(node.left, names),
                                       _eval_node(node.right, names))
    if isinstance(node, ast.UnaryOp):
        if isinstance(node.op, ast.USub):
            return -_eval_node(node.operand, names)
        if isinstance(node.op, ast.Not):
            return not _eval_node(node.operand, names)
    if isinstance(node, ast.BoolOp):
        # Short-circuit like Python: "not converged or convergence_time
        # < 30" must be writable when convergence_time is None.
        if isinstance(node.op, ast.And):
            for value in node.values:
                if not _eval_node(value, names):
                    return False
            return True
        for value in node.values:
            if _eval_node(value, names):
                return True
        return False
    if isinstance(node, ast.Compare):
        left = _eval_node(node.left, names)
        for op, comparator in zip(node.ops, node.comparators):
            if type(op) not in _CMP_OPS:
                raise ConfigurationError(
                    f"operator {type(op).__name__} not allowed "
                    f"in SLO expression")
            right = _eval_node(comparator, names)
            if not _CMP_OPS[type(op)](left, right):
                return False
            left = right
        return True
    if isinstance(node, ast.Call):
        if (isinstance(node.func, ast.Name) and node.func.id in _FUNCS
                and not node.keywords):
            return _FUNCS[node.func.id](
                *(_eval_node(arg, names) for arg in node.args))
        raise ConfigurationError("only abs/min/max/round calls are allowed "
                                 "in SLO expressions")
    raise ConfigurationError(
        f"syntax {type(node).__name__} not allowed in SLO expression")


def _validate_node(node: ast.AST) -> None:
    """Static mirror of :func:`_eval_node`'s whitelist: rejects every
    construct evaluation would reject, *except* unknown metric names
    (only resolvable at run time).  Lets a bad spec fail at validate
    time instead of burning a sweep on guaranteed error verdicts."""
    if isinstance(node, ast.Expression):
        _validate_node(node.body)
        return
    if isinstance(node, ast.Constant):
        if isinstance(node.value, (int, float, bool)) or node.value is None:
            return
        raise ConfigurationError(
            f"literal {node.value!r} not allowed in SLO expression")
    if isinstance(node, ast.Name):
        return
    if isinstance(node, ast.BinOp) and type(node.op) in _BIN_OPS:
        _validate_node(node.left)
        _validate_node(node.right)
        return
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.USub, ast.Not)):
        _validate_node(node.operand)
        return
    if isinstance(node, ast.BoolOp):
        for value in node.values:
            _validate_node(value)
        return
    if isinstance(node, ast.Compare):
        for op in node.ops:
            if type(op) not in _CMP_OPS:
                raise ConfigurationError(
                    f"operator {type(op).__name__} not allowed "
                    f"in SLO expression")
        _validate_node(node.left)
        for comparator in node.comparators:
            _validate_node(comparator)
        return
    if isinstance(node, ast.Call):
        if (isinstance(node.func, ast.Name) and node.func.id in _FUNCS
                and not node.keywords):
            for arg in node.args:
                _validate_node(arg)
            return
        raise ConfigurationError("only abs/min/max/round calls are allowed "
                                 "in SLO expressions")
    raise ConfigurationError(
        f"syntax {type(node).__name__} not allowed in SLO expression")


def evaluate_expression(expression: str, metrics: Dict[str, Any]) -> Any:
    """Evaluate a metric expression against a flat metrics dict.

    The grammar is a strict subset of Python expressions — arithmetic,
    comparisons, boolean combinators, metric names and abs/min/max/
    round — parsed through :mod:`ast`, never ``eval``, so a spec file
    from anywhere cannot execute anything.
    """
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as exc:
        raise ConfigurationError(
            f"bad SLO expression {expression!r}: {exc.msg}") from None
    return _eval_node(tree, metrics)


@dataclass
class MetricExpression(SLO):
    """A custom boolean expression over the flat metrics, e.g.
    ``"delivered_fraction >= 0.9 and recomputations < 500"``."""

    expression: str = "converged"
    kind = "expr"

    def label(self) -> str:
        return f"expr:{self.expression}"

    def validate(self) -> None:
        if not self.expression.strip():
            raise ConfigurationError("SLO expression must be non-empty")
        # Parse AND whitelist-check now so a bad spec fails at
        # validate time, not mid-sweep (only unknown metric names
        # defer to evaluation).
        try:
            tree = ast.parse(self.expression, mode="eval")
        except SyntaxError as exc:
            raise ConfigurationError(
                f"bad SLO expression {self.expression!r}: {exc.msg}"
            ) from None
        _validate_node(tree)

    def check(self, metrics: Dict[str, Any]) -> SLOVerdict:
        value = evaluate_expression(self.expression, metrics)
        return SLOVerdict(self.label(), self.kind, _status(bool(value)),
                          detail=f"evaluated to {value!r}")


# -- serialization ---------------------------------------------------------

SLO_KINDS: Dict[str, type] = {
    ConvergedWithin.kind: ConvergedWithin,
    MaxRecoveryTime.kind: MaxRecoveryTime,
    MinDeliveredFraction.kind: MinDeliveredFraction,
    MaxControlMessages.kind: MaxControlMessages,
    MetricExpression.kind: MetricExpression,
}

#: kind -> the single tunable field that kind serializes.
_SLO_FIELDS: Dict[str, str] = {
    ConvergedWithin.kind: "seconds",
    MaxRecoveryTime.kind: "seconds",
    MinDeliveredFraction.kind: "fraction",
    MaxControlMessages.kind: "count",
    MetricExpression.kind: "expression",
}

#: field -> coercion applied to deserialized/CLI-given values, so a
#: hand-edited spec with "seconds": "20" gates on 20.0 instead of
#: exploding in a string/float comparison mid-sweep.
_FIELD_COERCIONS: Dict[str, Callable[[Any], Any]] = {
    "seconds": float,
    "fraction": float,
    "count": int,
    "expression": str,
}


def _make_slo(kind: Any, raw_value: Any) -> SLO:
    try:
        cls = SLO_KINDS[kind]
    except (KeyError, TypeError):
        raise ConfigurationError(
            f"unknown SLO kind {kind!r}; "
            f"choose from {sorted(SLO_KINDS)}") from None
    field_name = _SLO_FIELDS[kind]
    try:
        value = _FIELD_COERCIONS[field_name](raw_value)
    except (TypeError, ValueError):
        raise ConfigurationError(
            f"bad {field_name!r} for SLO kind {kind!r}: "
            f"{raw_value!r}") from None
    return cls(**{field_name: value})


def slo_from_dict(data: Dict[str, Any]) -> SLO:
    """Inverse of ``SLO.to_dict`` — the spec deserialization hook."""
    kind = data.get("kind")
    if kind in SLO_KINDS and _SLO_FIELDS[kind] not in data:
        # to_dict always writes the threshold: a payload without it is
        # a typoed spec file, and silently gating on the class default
        # would pass runs the author meant to fail.
        raise ConfigurationError(
            f"SLO kind {kind!r} needs a {_SLO_FIELDS[kind]!r} value")
    return _make_slo(kind, data.get(_SLO_FIELDS.get(kind, ""), None))


def slo_from_kv(kind: str, raw_value: str) -> SLO:
    """Build an SLO from a ``--slo kind=value`` CLI pair — same
    registry and coercions as spec deserialization, one place to add
    a new kind."""
    return _make_slo(kind, raw_value)


def evaluate_slos(
    slos: Sequence[SLO],
    metrics: Optional[Dict[str, Any]],
    error: bool = False,
) -> List[SLOVerdict]:
    """Evaluate every SLO; with ``error`` set (the scenario died before
    producing metrics) every verdict is status ``error``.

    The verdict detail is deliberately a *fixed* string, not the
    exception text: verdicts are fingerprint-covered, and exception
    reprs can embed memory addresses.  The actual error string lives
    in the result's (fingerprint-excluded) diagnostics.
    """
    if error:
        return [slo.error_verdict(
                    "scenario failed before producing metrics "
                    "(see diagnostics.error)")
                for slo in slos]
    return [slo.evaluate(metrics or {}) for slo in slos]
