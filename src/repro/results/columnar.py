"""Columnar result store: million-record analytics behind the
unchanged :class:`~repro.results.store.ResultStore` API.

Layout of a columnar store directory::

    columnar.json        # format manifest (the detection marker)
    segments/seg-*.rseg  # immutable columnar segments (see segment.py)
    tail.jsonl           # JSONL write-ahead tail (same code as records.jsonl)
    tail-index.jsonl     # the tail's sidecar
    meta.json            # free-form metadata, identical to JSONL stores

Records append to the JSONL **tail** with exactly the JSONL store's
durability contract (record line fsynced before its index line, torn
tails truncated on writable open, readonly opens never repair disk) —
the tail literally runs the base class's code against different file
names.  When the tail reaches ``segment_rows`` rows it is *sealed*
into an immutable segment: the segment is published by fsync+rename
first, then the tail is rewritten without the absorbed rows.  A crash
between the two leaves rows present in both places; the loader drops
the tail copies (same fingerprint + error flag → the segment already
covers them), which is the columnar analogue of a torn-tail heal.

Within the in-memory index, a segment row's ``IndexEntry.offset`` is a
unique **negative ordinal** (tail rows keep their true byte offsets).
Offsets of live rows therefore never collide between the two worlds,
and every supersession — replace, merge, seal — moves a key to a fresh
offset, exactly as appends do in the JSONL store.

``merge_from`` gains a segment fast path: whole segment files from
columnar sources are hard-linked (or copied) into this store and their
winning rows admitted without parsing a single record, making a fleet
shard merge O(segments + leftover records).  The merged *content* is
identical to a JSONL merge (same winners, same dedup rule); only the
physical record order may differ, which no deterministic surface
(digest, diff, aggregate, resume) observes.

Everything here requires numpy; the JSONL store does not.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
import tempfile
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.errors import ConfigurationError
from repro.obs.metrics import metrics
from repro.obs.spans import span
from repro.results import segment as segment_codec
from repro.results.aggregate import (
    ROLLUP_METRICS,
    MetricRollup,
    SLOTally,
    StoreAggregate,
    scenario_family,
)
from repro.results.records import RESULT_SCHEMA_VERSION, record_key
from repro.results.segment import (
    MASK_ABSENT,
    MASK_NUMBER,
    SEGMENT_SUFFIX,
    SegmentReader,
    write_segment,
)
from repro.results.slo import ERROR, FAIL, PASS
from repro.results.store import (
    METADATA_FILE,
    RECORDS_FILE,
    IndexEntry,
    ResultStore,
    _cleaned_canonical,
    _RecordReader,
)

FORMAT_NAME = "columnar"
MANIFEST_FILE = "columnar.json"
SEGMENTS_DIR = "segments"
TAIL_RECORDS_FILE = "tail.jsonl"
TAIL_INDEX_FILE = "tail-index.jsonl"

#: Tail rows that trigger an automatic seal into a segment.
DEFAULT_SEGMENT_ROWS = 8192

_SEGMENT_NAME_RE = re.compile(r"^seg-(\d+)\.rseg")

Key = Tuple[str, int]
#: A record's location: ("s", segment_index, row) or ("t", byte_offset).
Loc = Tuple[Any, ...]


def is_columnar_store(path: str) -> bool:
    """Format detection: the manifest file is the marker."""
    return os.path.isfile(os.path.join(path, MANIFEST_FILE))


class _ColumnarRecordReader(_RecordReader):
    """Merge-time record fetcher that dispatches segment rows to the
    page cache and tail rows to the WAL file."""

    def fetch(self, key: Key) -> Dict[str, Any]:
        loc = self.store._loc[key]
        if loc[0] == "s":
            return self.store._segments[loc[1]].record(loc[2])
        return super().fetch(key)


class ColumnarResultStore(ResultStore):
    """Drop-in :class:`ResultStore` with columnar segment storage.

    Same constructor, same methods, same invariants (dedup by
    (spec_hash, seed), last-write-wins supersession, canonical digest,
    crash-tolerant tail, readonly never repairs disk).  Reports run
    straight off mmap'd metric columns; merges move whole segments.
    """

    def __init__(self, path: str, create: bool = True,
                 readonly: bool = False, format: "Optional[str]" = None,
                 segment_rows: "Optional[int]" = None):
        if format not in (None, FORMAT_NAME):
            raise ConfigurationError(
                f"store {path!r} is columnar but format={format!r} "
                "was requested")
        self.path = os.path.abspath(path)
        self.readonly = readonly
        manifest_path = os.path.join(self.path, MANIFEST_FILE)
        if not os.path.isfile(manifest_path):
            if not create or readonly:
                raise ConfigurationError(
                    f"result store {path!r} does not exist")
            if os.path.exists(os.path.join(self.path, RECORDS_FILE)):
                raise ConfigurationError(
                    f"{path!r} already holds a JSONL result store; "
                    "use 'repro store convert' instead")
            segment_codec._numpy()  # fail before any file is created
            os.makedirs(os.path.join(self.path, SEGMENTS_DIR),
                        exist_ok=True)
            manifest = {"format": FORMAT_NAME, "version": 1,
                        "segment_rows": int(segment_rows
                                            or DEFAULT_SEGMENT_ROWS)}
            tmp = manifest_path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, manifest_path)
        else:
            segment_codec._numpy()
            try:
                with open(manifest_path, "r", encoding="utf-8") as handle:
                    manifest = json.load(handle)
            except (OSError, ValueError) as exc:
                raise ConfigurationError(
                    f"store manifest {manifest_path!r} is unreadable: "
                    f"{exc}") from exc
            if (not isinstance(manifest, dict)
                    or manifest.get("format") != FORMAT_NAME):
                raise ConfigurationError(
                    f"store manifest {manifest_path!r} does not describe "
                    "a columnar store")
        self.segment_rows = int(segment_rows
                                or manifest.get("segment_rows")
                                or DEFAULT_SEGMENT_ROWS)
        self.records_path = os.path.join(self.path, TAIL_RECORDS_FILE)
        self.index_path = os.path.join(self.path, TAIL_INDEX_FILE)
        self.metadata_path = os.path.join(self.path, METADATA_FILE)
        self.segments_dir = os.path.join(self.path, SEGMENTS_DIR)
        self._index: Dict[Key, IndexEntry] = {}
        self._order: List[Key] = []
        self._loc: Dict[Key, Loc] = {}
        self._segments: List[SegmentReader] = []
        self._dead: List[Set[int]] = []
        self._tail_keys: List[Key] = []
        self._tail_set: Set[Key] = set()
        self._next_ordinal = -1
        self._next_segment_id = 0
        self._load_segments()
        self._load_tail()

    # -- loading -----------------------------------------------------------

    def _segment_files(self) -> List[str]:
        if not os.path.isdir(self.segments_dir):
            return []
        return sorted(name for name in os.listdir(self.segments_dir)
                      if name.endswith(SEGMENT_SUFFIX))

    def _load_segments(self) -> None:
        if not os.path.isdir(self.segments_dir):
            if not self.readonly:
                os.makedirs(self.segments_dir, exist_ok=True)
            return
        for name in os.listdir(self.segments_dir):
            match = _SEGMENT_NAME_RE.match(name)
            if match:
                self._next_segment_id = max(self._next_segment_id,
                                            int(match.group(1)) + 1)
            if self.readonly:
                continue
            # Crash debris from an unfinished seal (.tmp) or a
            # liveness file whose segment never got published: never
            # visible to readers, safe to drop on a writable open.
            full = os.path.join(self.segments_dir, name)
            orphan_live = (name.endswith(SEGMENT_SUFFIX + ".live")
                           and not os.path.exists(
                               full[:-len(".live")]))
            if name.endswith(".tmp") or orphan_live:
                try:
                    os.remove(full)
                except OSError:  # pragma: no cover - racing cleanup
                    pass
        for name in self._segment_files():
            full = os.path.join(self.segments_dir, name)
            try:
                reader = SegmentReader(full)
            except ConfigurationError:
                # Torn/corrupt segment: dropped exactly like a torn
                # JSONL tail.  Writable opens quarantine the file so
                # the next seal cannot collide with it; readonly opens
                # skip it in memory only.
                if not self.readonly:
                    os.replace(full, full + ".corrupt")
                continue
            admitted = self._segment_live_rows(full, reader.rows)
            si = len(self._segments)
            self._segments.append(reader)
            self._dead.append(
                set() if admitted is None
                else set(range(reader.rows)) - admitted)
            rows = [(row, sh, seed, name_, fp, err)
                    for row, (sh, seed, name_, fp, err) in enumerate(
                        reader.iter_index())
                    if admitted is None or row in admitted]
            for row, sh, seed, name_, fp, err in self._admission_order(
                    reader, rows):
                entry = IndexEntry(spec_hash=sh, seed=seed, name=name_,
                                   fingerprint=fp,
                                   offset=self._next_ordinal, error=err)
                self._next_ordinal -= 1
                self._set_loc((sh, seed), ("s", si, row))
                self._admit(entry)

    @staticmethod
    def _admission_order(reader: SegmentReader, rows: List[Tuple]) -> List[Tuple]:
        """Order segment rows for index admission.  Seals record the
        keys' first-insert order as an ``admit_order`` provenance
        permutation (row order itself is last-write order, which
        iteration needs); rows the permutation does not cover — old
        segments, partial merge copies — keep row order."""
        order = reader.footer.get("provenance", {}).get("admit_order")
        if not isinstance(order, list):
            return rows
        rank = {}
        for position, row in enumerate(order):
            if isinstance(row, int) and row not in rank:
                rank[row] = position
        return sorted(rows, key=lambda item: (rank.get(item[0], len(order)),
                                              item[0]))

    def _segment_live_rows(self, segment_path: str,
                           rows: int) -> "Optional[Set[int]]":
        """The ``.live`` sidecar a partial segment copy carries: the
        rows a merge actually admitted.  None (no sidecar) means all
        rows belong to this store."""
        live_path = segment_path + ".live"
        if not os.path.exists(live_path):
            return None
        try:
            with open(live_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            live = {int(row) for row in data}
        except (OSError, ValueError, TypeError):
            # Unreadable liveness: fail closed (treat every row as
            # foreign) rather than resurrect dedup losers.
            return set()
        return {row for row in live if 0 <= row < rows}

    def _load_tail(self) -> None:
        stale = False
        for entry in self._load_index_entries():
            key = (entry.spec_hash, entry.seed)
            loc = self._loc.get(key)
            if loc is not None and loc[0] == "s":
                si, row = loc[1], loc[2]
                idx = self._segments[si].index_columns()
                if (row not in self._dead[si]
                        and idx["fingerprint"][row] == entry.fingerprint
                        and bool(idx["error"][row]) == entry.error):
                    # A seal published this row's segment but crashed
                    # before rewriting the tail: the segment copy wins.
                    stale = True
                    continue
            self._admit(entry)
            self._set_loc(key, ("t", entry.offset))
            self._tail_touch(key)
        if stale and not self.readonly:
            self._rewrite_tail()

    def _tail_touch(self, key: Key) -> None:
        """Record ``key`` as the newest tail row.  A replace moves the
        key to the back of the tail order — where its superseding line
        physically sits, and where the JSONL store's live-file order
        puts it — so a later seal freezes rows in the same order both
        formats iterate."""
        if key in self._tail_set:
            self._tail_keys.remove(key)
        else:
            self._tail_set.add(key)
        self._tail_keys.append(key)

    def _set_loc(self, key: Key, loc: Loc) -> None:
        """Move a key to a new location; the location it leaves (if it
        was a segment row) becomes a dead row."""
        old = self._loc.get(key)
        if old is not None and old[0] == "s":
            self._dead[old[1]].add(old[2])
        self._loc[key] = loc

    # -- tail machinery ----------------------------------------------------

    def _read_tail_lines(self, keys: "Sequence[Key]") -> List[bytes]:
        lines: List[bytes] = []
        with open(self.records_path, "rb") as handle:
            for key in keys:
                handle.seek(self._loc[key][1])
                lines.append(handle.readline())
        return lines

    def _rewrite_tail(self) -> None:
        """Atomically rewrite the tail (and its sidecar) to hold
        exactly the live tail rows, in tail order.  Offsets move; the
        index follows."""
        keys = list(self._tail_keys)
        lines = self._read_tail_lines(keys) if keys else []
        tmp_records = self.records_path + ".tmp"
        new_entries: List[IndexEntry] = []
        with open(tmp_records, "wb") as handle:
            for key, line in zip(keys, lines):
                offset = handle.tell()
                handle.write(line)
                old = self._index[key]
                new_entries.append(IndexEntry(
                    spec_hash=old.spec_hash, seed=old.seed, name=old.name,
                    fingerprint=old.fingerprint, offset=offset,
                    error=old.error))
            handle.flush()
            os.fsync(handle.fileno())
        tmp_index = self.index_path + ".tmp"
        with open(tmp_index, "w", encoding="utf-8") as handle:
            for entry in new_entries:
                handle.write(json.dumps(entry.to_dict(), sort_keys=True)
                             + "\n")
        os.replace(tmp_records, self.records_path)
        os.replace(tmp_index, self.index_path)
        for key, entry in zip(keys, new_entries):
            self._index[key] = entry
            self._loc[key] = ("t", entry.offset)

    # -- writing -----------------------------------------------------------

    def append(self, record: Dict[str, Any],
               replace: bool = False) -> IndexEntry:
        entry = super().append(record, replace)
        key = (entry.spec_hash, entry.seed)
        self._set_loc(key, ("t", entry.offset))
        self._tail_touch(key)
        self._maybe_seal()
        return entry

    def append_many(self, records: "Sequence[Dict[str, Any]]",
                    replace: bool = False) -> List[IndexEntry]:
        entries = super().append_many(records, replace)
        for entry in entries:
            key = (entry.spec_hash, entry.seed)
            self._set_loc(key, ("t", entry.offset))
            self._tail_touch(key)
        self._maybe_seal()
        return entries

    def _maybe_seal(self) -> None:
        while len(self._tail_keys) >= self.segment_rows:
            self._seal_rows(self.segment_rows)

    def seal(self, rows: "Optional[int]" = None) -> int:
        """Seal up to ``rows`` tail rows (default: all) into a
        segment; returns the rows sealed.  Also the explicit flush a
        converter calls so a freshly converted store is all-columnar."""
        if self.readonly:
            raise ConfigurationError(
                f"result store {self.path!r} was opened read-only")
        count = len(self._tail_keys)
        if rows is not None:
            count = min(count, rows)
        if count <= 0:
            return 0
        self._seal_rows(count)
        return count

    def _next_segment_path(self) -> str:
        path = os.path.join(self.segments_dir,
                            f"seg-{self._next_segment_id:08d}{SEGMENT_SUFFIX}")
        self._next_segment_id += 1
        return path

    def _register_segment(self, path: str) -> int:
        reader = SegmentReader(path)
        self._segments.append(reader)
        self._dead.append(set())
        return len(self._segments) - 1

    def _seal_rows(self, count: int) -> None:
        with span("store.seal", rows=count):
            self._seal_rows_inner(count)
        reg = metrics()
        reg.counter("store.seals").inc()
        reg.counter("store.sealed_rows").inc(count)

    def _seal_rows_inner(self, count: int) -> None:
        keys = self._tail_keys[:count]
        records = [json.loads(line)
                   for line in self._read_tail_lines(keys)]
        path = self._next_segment_path()
        # Rows freeze in tail (= last-write) order so iter_records
        # matches the JSONL live-file order; admit_order additionally
        # records the keys' first-insert order so a reopen can rebuild
        # keys()/entries() order too (a replace moves a key's row but
        # not its slot).
        provenance: Dict[str, Any] = {"created_by": "seal", "rows": count}
        slot = {key: index for index, key in enumerate(self._order)}
        admit_order = sorted(range(count), key=lambda row: slot[keys[row]])
        if admit_order != list(range(count)):
            provenance["admit_order"] = admit_order
        write_segment(path, records, provenance=provenance)
        si = self._register_segment(path)
        for row, key in enumerate(keys):
            self._set_loc(key, ("s", si, row))
            old = self._index[key]
            self._index[key] = IndexEntry(
                spec_hash=old.spec_hash, seed=old.seed, name=old.name,
                fingerprint=old.fingerprint, offset=self._next_ordinal,
                error=old.error)
            self._next_ordinal -= 1
        self._tail_keys = self._tail_keys[count:]
        self._tail_set = set(self._tail_keys)
        self._rewrite_tail()

    # -- merge / compaction ------------------------------------------------

    def _open_reader(self) -> _RecordReader:
        return _ColumnarRecordReader(self)

    def merge_from(
        self,
        sources: "Sequence[ResultStore]",
        order: "Optional[Sequence[Key]]" = None,
        replace_errors: bool = True,
    ) -> int:
        """Same winners and dedup rule as the JSONL merge, plus a
        segment fast path: a columnar source's segments are linked (or
        copied) wholesale and their winning rows admitted from the
        segment index alone — O(segments) file work, no record
        parsing.  Rows that lose the dedup ride along dead (compact
        reclaims them).  Only the *physical* record order can differ
        from a JSONL merge; every deterministic surface (digest, diff,
        aggregate, resume) is unaffected, so ``order`` only orders the
        non-segment leftovers."""
        if self.readonly:
            raise ConfigurationError(
                f"result store {self.path!r} was opened read-only")
        best: Dict[Key, Tuple[ResultStore, IndexEntry]] = {}
        arrival: List[Key] = []
        for source in sources:
            for entry in source.iter_entries():
                key = (entry.spec_hash, entry.seed)
                resident = self._index.get(key)
                if resident is not None and not (
                        replace_errors and resident.error
                        and not entry.error):
                    continue  # can never win against the resident
                if key not in best:
                    best[key] = (source, entry)
                    arrival.append(key)
                elif best[key][1].error and not entry.error:
                    best[key] = (source, entry)
        if not best:
            return 0
        metrics().counter("store.merges").inc()
        appended = 0
        superseded_tail = False
        # Segment fast path: one pass per source segment, admitting
        # the rows whose key this source won.
        for source in sources:
            if not isinstance(source, ColumnarResultStore):
                continue
            for src_si, seg in enumerate(source._segments):
                src_dead = source._dead[src_si]
                idx = seg.index_columns()
                rows: List[int] = []
                for row in range(seg.rows):
                    if row in src_dead:
                        continue
                    key = (idx["spec_hash"][row], idx["seed"][row])
                    win = best.get(key)
                    if win is None or win[0] is not source:
                        continue
                    if source._loc.get(key) != ("s", src_si, row):
                        continue  # superseded within the source
                    rows.append(row)
                if not rows:
                    continue
                path = self._next_segment_path()
                if len(rows) < seg.rows:
                    # Some rows lost the dedup: record which rows this
                    # store admitted, *before* the segment becomes
                    # visible, so a reload never resurrects losers.
                    live_tmp = path + ".live.tmp"
                    with open(live_tmp, "w", encoding="utf-8") as handle:
                        json.dump(rows, handle)
                        handle.flush()
                        os.fsync(handle.fileno())
                    os.replace(live_tmp, path + ".live")
                try:
                    os.link(seg.path, path)
                except OSError:
                    shutil.copy2(seg.path, path)
                new_si = self._register_segment(path)
                self._dead[new_si] = set(range(seg.rows)) - set(rows)
                for row in rows:
                    key = (idx["spec_hash"][row], idx["seed"][row])
                    self._set_loc(key, ("s", new_si, row))
                    if key in self._tail_set:
                        # The copy superseded a resident tail record
                        # (an error a shard's healthy row replaces);
                        # drop it from the tail bookkeeping — and from
                        # the tail file below, so a reload cannot
                        # resurrect it over the segment row.
                        self._tail_set.discard(key)
                        self._tail_keys.remove(key)
                        superseded_tail = True
                    self._admit(IndexEntry(
                        spec_hash=key[0], seed=key[1],
                        name=idx["name"][row],
                        fingerprint=idx["fingerprint"][row],
                        offset=self._next_ordinal,
                        error=bool(idx["error"][row])))
                    self._next_ordinal -= 1
                    del best[key]
                appended += len(rows)
        if superseded_tail:
            self._rewrite_tail()
        # Leftovers (tail rows and JSONL sources) go record-by-record,
        # in the caller's canonical order.
        keys = [tuple(key) for key in (order or []) if tuple(key) in best]
        ordered = set(keys)
        keys.extend(key for key in arrival
                    if key in best and key not in ordered)
        if keys:
            readers: Dict[int, _RecordReader] = {}
            try:
                batch: List[Dict[str, Any]] = []
                for key in keys:
                    source = best[key][0]
                    reader = readers.get(id(source))
                    if reader is None:
                        reader = source._open_reader()
                        readers[id(source)] = reader
                    batch.append(reader.fetch(key))
                    if len(batch) >= 4096:
                        self.append_many(batch, replace=True)
                        batch = []
                if batch:
                    self.append_many(batch, replace=True)
            finally:
                for reader in readers.values():
                    reader.close()
            appended += len(keys)
        metrics().counter("store.merged_records").inc(appended)
        return appended

    def compact(self) -> int:
        """Seal the tail, then rewrite every segment that carries dead
        rows.  Each rewrite publishes the replacement segment before
        deleting the original, so a crash at any point leaves a store
        that heals on open (duplicate keys resolve last-segment-wins).
        Returns the bytes reclaimed."""
        if self.readonly:
            raise ConfigurationError(
                f"result store {self.path!r} was opened read-only")
        before = self._disk_bytes()
        self.seal()
        for si in range(len(self._segments)):
            dead = self._dead[si]
            if not dead:
                continue
            seg = self._segments[si]
            live_rows = [row for row in range(seg.rows) if row not in dead]
            old_path = seg.path
            if live_rows:
                records = [json.loads(payload) for _, payload
                           in seg.iter_payloads(live_rows)]
                path = self._next_segment_path()
                write_segment(path, records, provenance={
                    "created_by": "compact", "rows": len(records)})
                new_si = self._register_segment(path)
                for row, record in zip(range(len(live_rows)), records):
                    key = record_key(record)
                    self._set_loc(key, ("s", new_si, row))
                    old_entry = self._index[key]
                    self._index[key] = IndexEntry(
                        spec_hash=old_entry.spec_hash, seed=old_entry.seed,
                        name=old_entry.name,
                        fingerprint=old_entry.fingerprint,
                        offset=self._next_ordinal, error=old_entry.error)
                    self._next_ordinal -= 1
            seg.close()
            self._dead[si] = set(range(seg.rows))
            os.remove(old_path)
            if os.path.exists(old_path + ".live"):
                os.remove(old_path + ".live")
        return before - self._disk_bytes()

    def _disk_bytes(self) -> int:
        total = 0
        for name in self._segment_files():
            try:
                total += os.path.getsize(
                    os.path.join(self.segments_dir, name))
            except OSError:  # pragma: no cover - racing delete
                pass
        for path in (self.records_path, self.index_path):
            if os.path.exists(path):
                total += os.path.getsize(path)
        return total

    # -- reading -----------------------------------------------------------

    @property
    def storage_format(self) -> str:
        return FORMAT_NAME

    def get(self, spec_hash: str, seed: int) -> Dict[str, Any]:
        key = (spec_hash, seed)
        if key not in self._index:
            raise KeyError(
                f"no record for spec_hash={spec_hash} seed={seed}")
        loc = self._loc[key]
        if loc[0] == "s":
            return self._segments[loc[1]].record(loc[2])
        with open(self.records_path, "rb") as handle:
            handle.seek(loc[1])
            return json.loads(handle.readline())

    def records_at(self,
                   keys: "Sequence[Key]") -> Iterator[Dict[str, Any]]:
        if not keys:
            return
        handle = None
        try:
            for key in keys:
                loc = self._loc[tuple(key)]
                if loc[0] == "s":
                    yield self._segments[loc[1]].record(loc[2])
                else:
                    if handle is None:
                        handle = open(self.records_path, "rb")
                    handle.seek(loc[1])
                    yield json.loads(handle.readline())
        finally:
            if handle is not None:
                handle.close()

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        """Segments in segment order (pages decompress once each),
        then the live tail in file order — the columnar analogue of
        "live records in file order"."""
        for si, seg in enumerate(self._segments):
            dead = self._dead[si]
            if len(dead) >= seg.rows:
                continue
            for row, payload in seg.iter_payloads():
                if row not in dead:
                    yield json.loads(payload)
        yield from super().iter_records()

    def iter_entry_metrics(
            self) -> Iterator[Tuple[IndexEntry, Dict[str, Any]]]:
        """(entry, metrics) per live record off the compact metrics
        blob — full payloads never decompress on this path."""
        for si, seg in enumerate(self._segments):
            dead = self._dead[si]
            if len(dead) >= seg.rows:
                continue
            idx = seg.index_columns()
            for row in range(seg.rows):
                if row in dead:
                    continue
                key = (idx["spec_hash"][row], idx["seed"][row])
                yield self._index[key], json.loads(seg.metrics_bytes(row))
        for record in super().iter_records():
            entry = self._index.get(record_key(record))
            metrics = record.get("metrics", {})
            yield entry, metrics if isinstance(metrics, dict) else {}

    def entry_metrics_at(
            self, keys: "Sequence[Key]",
    ) -> Iterator[Tuple[IndexEntry, Dict[str, Any]]]:
        """Keyed metric fetch off the metrics blobs: sealed rows never
        decompress their payload page, tail rows parse their one
        line."""
        handle = None
        try:
            for key in keys:
                key = tuple(key)
                loc = self._loc[key]
                if loc[0] == "s":
                    seg = self._segments[loc[1]]
                    metrics = json.loads(seg.metrics_bytes(loc[2]))
                else:
                    if handle is None:
                        handle = open(self.records_path, "rb")
                    handle.seek(loc[1])
                    record = json.loads(handle.readline())
                    metrics = record.get("metrics", {})
                    if not isinstance(metrics, dict):
                        metrics = {}
                yield self._index[key], metrics
        finally:
            if handle is not None:
                handle.close()

    def iter_csv_rows(
            self) -> "Iterator[Tuple[Dict[str, Any], List[str]]]":
        """CSV export off the index / metrics / SLO columns: a healthy
        sealed row never decompresses its payload page.  Errored rows
        (their error *string* lives only inside the record) and the
        tail go through the record path.  Healthy sealed rows report
        the current ``RESULT_SCHEMA_VERSION`` — the only version
        ``append`` ever seals into a segment."""
        from repro.results.aggregate import _csv_row, flatten_csv_row

        for si, seg in enumerate(self._segments):
            dead = self._dead[si]
            if len(dead) >= seg.rows:
                continue
            idx = seg.index_columns()
            offsets, label_ids, status_ids, labels, statuses = seg.slo()
            for row in range(seg.rows):
                if row in dead:
                    continue
                if idx["error"][row]:
                    yield _csv_row(seg.record(row))
                    continue
                lo, hi = int(offsets[row]), int(offsets[row + 1])
                yield flatten_csv_row(
                    {"name": idx["name"][row],
                     "seed": idx["seed"][row],
                     "spec_hash": idx["spec_hash"][row],
                     "fingerprint": idx["fingerprint"][row],
                     "schema_version": RESULT_SCHEMA_VERSION},
                    json.loads(seg.metrics_bytes(row)),
                    [(labels[int(label_ids[i])], statuses[int(status_ids[i])])
                     for i in range(lo, hi)],
                    None)
        for record in super().iter_records():
            yield _csv_row(record)

    def aggregate(self) -> StoreAggregate:
        """The report in one vectorized pass over the metric columns —
        no record parsing for sealed rows; the (small) tail streams
        through the scalar path.  Bit-for-bit identical to
        ``aggregate_records(self.iter_records())``."""
        np = segment_codec._numpy()
        agg = StoreAggregate()
        column_values: Dict[str, List[Any]] = {name: []
                                               for name in ROLLUP_METRICS}
        seen_rollups: Set[str] = set()
        for si, seg in enumerate(self._segments):
            live = np.ones(seg.rows, dtype=bool)
            for row in self._dead[si]:
                live[row] = False
            n_live = int(live.sum())
            if n_live == 0:
                continue
            agg.records += n_live
            errored = seg.errors.astype(bool)
            agg.errors += int((errored & live).sum())
            agg.converged += int(((seg.converged != 0) & live).sum())
            healthy = live & ~errored
            for name in ROLLUP_METRICS:
                column = seg.metric(name)
                if column is None:
                    continue
                values, mask = column
                if bool(((mask != MASK_ABSENT) & healthy).any()):
                    seen_rollups.add(name)
                numeric = (mask == MASK_NUMBER) & healthy
                if bool(numeric.any()):
                    column_values[name].append(values[numeric])
            wall_column = seg.metric("wall_seconds")
            if wall_column is not None:
                wall_values, wall_mask = wall_column
                wall_rows = np.nonzero((wall_mask == MASK_NUMBER)
                                       & healthy)[0]
                if len(wall_rows):
                    names = seg.index_columns()["name"]
                    for row in wall_rows:
                        family = scenario_family(str(names[int(row)]))
                        agg.scenario_walls.setdefault(family, []).append(
                            float(wall_values[int(row)]))
            offsets, label_ids, status_ids, labels, statuses = seg.slo()
            if len(label_ids):
                counts = np.diff(offsets.astype(np.int64))
                verdict_rows = np.repeat(np.arange(seg.rows), counts)
                keep = live[verdict_rows]
                if bool(keep.any()):
                    n_status = max(len(statuses), 1)
                    combo = np.bincount(
                        label_ids[keep].astype(np.int64) * n_status
                        + status_ids[keep].astype(np.int64),
                        minlength=len(labels) * n_status)
                    for li, label in enumerate(labels):
                        per_status = combo[li * n_status:(li + 1) * n_status]
                        if int(per_status.sum()) == 0:
                            continue
                        tally = agg.slo_tallies.setdefault(
                            label, SLOTally(label))
                        for sj, status in enumerate(statuses):
                            count = int(per_status[sj])
                            if not count:
                                continue
                            if status == PASS:
                                tally.passed += count
                            elif status == FAIL:
                                tally.failed += count
                            elif status == ERROR:
                                tally.errored += count
        for name in ROLLUP_METRICS:
            if name in seen_rollups:
                rollup = agg.metric_rollups.setdefault(
                    name, MetricRollup(name))
                for chunk in column_values[name]:
                    rollup.values.extend(chunk.tolist())
        for record in super().iter_records():  # the live tail
            agg.add(record)
        return agg

    def count_failing_slos(self, keys: "Sequence[Key]") -> int:
        tail_keys: List[Key] = []
        total = 0
        for key in keys:
            loc = self._loc[tuple(key)]
            if loc[0] != "s":
                tail_keys.append(tuple(key))
                continue
            offsets, _, status_ids, _, statuses = \
                self._segments[loc[1]].slo()
            passing = {i for i, status in enumerate(statuses)
                       if status == PASS}
            lo, hi = int(offsets[loc[2]]), int(offsets[loc[2] + 1])
            total += sum(1 for sid in status_ids[lo:hi]
                         if int(sid) not in passing)
        return total + super().count_failing_slos(tail_keys)

    def canonical_digest(self) -> str:
        """Same digest, same bytes, as the JSONL implementation — but
        computed with one *sequential* decompression pass (each
        payload page inflates exactly once) spilled to a temp file,
        then hashed in canonical key order."""
        digest = hashlib.sha256()
        spans: Dict[Key, Tuple[int, int]] = {}
        with tempfile.TemporaryFile() as spill:
            offset = 0
            for key, record in self._iter_live_with_keys():
                cleaned = _cleaned_canonical(record)
                spill.write(cleaned)
                spans[key] = (offset, len(cleaned))
                offset += len(cleaned)
            for key in sorted(self._order):
                start, length = spans[key]
                spill.seek(start)
                digest.update(spill.read(length))
        return digest.hexdigest()[:16]

    def _iter_live_with_keys(
            self) -> Iterator[Tuple[Key, Dict[str, Any]]]:
        for si, seg in enumerate(self._segments):
            dead = self._dead[si]
            if len(dead) >= seg.rows:
                continue
            idx = seg.index_columns()
            for row, payload in seg.iter_payloads():
                if row not in dead:
                    yield ((idx["spec_hash"][row], idx["seed"][row]),
                           json.loads(payload))
        for record in super().iter_records():
            yield record_key(record), record

    def close(self) -> None:
        """Release segment mmaps/handles (reads after this fail)."""
        for seg in self._segments:
            seg.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ColumnarResultStore {self.path!r} records={len(self)} "
                f"segments={len(self._segments)} "
                f"tail={len(self._tail_keys)}>")


def convert_store(source: ResultStore, target_path: str, fmt: str,
                  batch_rows: int = 4096) -> ResultStore:
    """Convert a store to ``fmt`` ("jsonl" or "columnar") at
    ``target_path`` (which must not already hold anything).

    Streams live records in batches, carries the metadata over, and
    stamps a provenance entry.  The converted store digests
    identically to the source (superseded lines do not survive the
    trip — they are not part of the store's deterministic content)."""
    if fmt not in ("jsonl", FORMAT_NAME):
        raise ConfigurationError(
            f"unknown store format {fmt!r} (expected 'jsonl' or "
            f"'{FORMAT_NAME}')")
    if os.path.isfile(target_path):
        raise ConfigurationError(
            f"convert target {target_path!r} is a file")
    if os.path.isdir(target_path) and os.listdir(target_path):
        raise ConfigurationError(
            f"convert target {target_path!r} already exists and is "
            "not empty")
    if os.path.abspath(target_path) == source.path:
        raise ConfigurationError(
            "convert target must differ from the source store")
    target = ResultStore(target_path, create=True, format=fmt)
    batch: List[Dict[str, Any]] = []
    count = 0
    for record in source.iter_records():
        batch.append(record)
        if len(batch) >= batch_rows:
            target.append_many(batch)
            count += len(batch)
            batch = []
    if batch:
        target.append_many(batch)
        count += len(batch)
    if isinstance(target, ColumnarResultStore):
        target.seal()
    metadata = source.metadata
    if metadata:
        target.update_metadata(metadata)
    target.record_provenance({
        "transport": "convert",
        "source": source.path,
        "source_format": source.storage_format,
        "target_format": target.storage_format,
        "records": count,
    })
    return target
