"""A/B comparison of two result stores — the controller-testing gate.

Control Plane Compression-style workflows need to show that an
optimized controller (or engine, or refactor) behaves *identically*
to the reference: run the same spec family through both, then diff
the stores.  :func:`diff_stores` matches records pairwise and
classifies every key:

* ``match``        — fingerprints equal (which covers every
  deterministic measurement *and* the SLO verdicts);
* ``fingerprint``  — both stores ran it, results diverge; the entry
  lists which metrics and verdicts moved;
* ``only_a`` / ``only_b`` — one store is missing the key.

Matching is by ``(spec_hash, seed)`` when the stores share spec
hashes (same specs, different engine — the bit-for-bit check).  When
the hashes are fully disjoint — the usual A/B shape: same generator
and seeds, but the spec embeds a different controller or parameter —
matching falls back to ``(name, seed)``, where fingerprints will
legitimately differ and the interesting signal is the per-key SLO
verdict and metric deltas.

``repro campaign diff`` prints the report and exits non-zero on any
divergence, so a diff can gate CI exactly like ``campaign check``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.results.records import VOLATILE_METRIC_FIELDS, record_slos
from repro.results.store import ResultStore


@dataclass
class DiffEntry:
    """One compared key and how the two stores disagree about it."""

    key: Tuple[Any, int]          # (spec_hash, seed) or (name, seed)
    name: str
    status: str                   # match | fingerprint | only_a | only_b
    fingerprint_a: str = ""
    fingerprint_b: str = ""
    verdict_changes: List[str] = field(default_factory=list)
    metric_changes: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"key": list(self.key), "name": self.name,
                "status": self.status,
                "fingerprint_a": self.fingerprint_a,
                "fingerprint_b": self.fingerprint_b,
                "verdict_changes": self.verdict_changes,
                "metric_changes": self.metric_changes}


@dataclass
class StoreDiff:
    """The full comparison: entries plus the verdict."""

    match_on: str                 # "key" or "name_seed"
    entries: List[DiffEntry] = field(default_factory=list)

    @property
    def matched(self) -> int:
        return sum(1 for e in self.entries if e.status == "match")

    @property
    def divergent(self) -> int:
        return sum(1 for e in self.entries if e.status == "fingerprint")

    @property
    def only_a(self) -> int:
        return sum(1 for e in self.entries if e.status == "only_a")

    @property
    def only_b(self) -> int:
        return sum(1 for e in self.entries if e.status == "only_b")

    @property
    def identical(self) -> bool:
        """True iff every key matched bit-for-bit — the gate."""
        return all(e.status == "match" for e in self.entries)

    def to_dict(self) -> Dict[str, Any]:
        return {"match_on": self.match_on, "identical": self.identical,
                "matched": self.matched, "divergent": self.divergent,
                "only_a": self.only_a, "only_b": self.only_b,
                "entries": [e.to_dict() for e in self.entries]}

    def report(self) -> str:
        """Human-readable diff, divergences first."""
        lines = [
            f"store diff ({'spec_hash' if self.match_on == 'key' else 'name'}"
            f"+seed matching): {self.matched} match, "
            f"{self.divergent} divergent, "
            f"{self.only_a} only in A, {self.only_b} only in B"
        ]
        for entry in self.entries:
            if entry.status == "match":
                continue
            if entry.status in ("only_a", "only_b"):
                where = "A" if entry.status == "only_a" else "B"
                lines.append(f"  {entry.name:<32} seed={entry.key[1]:<6} "
                             f"only in {where}")
                continue
            lines.append(f"  {entry.name:<32} seed={entry.key[1]:<6} "
                         f"fp {entry.fingerprint_a} != {entry.fingerprint_b}")
            for change in entry.verdict_changes:
                lines.append(f"      slo    {change}")
            for change in entry.metric_changes:
                lines.append(f"      metric {change}")
        if self.identical:
            lines.append("stores are equivalent (every compared record "
                         "matches bit-for-bit)")
        return "\n".join(lines)


def _verdict_changes(rec_a: Dict[str, Any],
                     rec_b: Dict[str, Any]) -> List[str]:
    by_label_a = {v.get("slo", ""): v.get("status") for v in record_slos(rec_a)}
    by_label_b = {v.get("slo", ""): v.get("status") for v in record_slos(rec_b)}
    changes = []
    for label in sorted(set(by_label_a) | set(by_label_b)):
        status_a = by_label_a.get(label, "absent")
        status_b = by_label_b.get(label, "absent")
        if status_a != status_b:
            changes.append(f"{label}: {status_a} -> {status_b}")
    return changes


def _metric_changes(rec_a: Dict[str, Any],
                    rec_b: Dict[str, Any]) -> List[str]:
    metrics_a = rec_a.get("metrics", {}) or {}
    metrics_b = rec_b.get("metrics", {}) or {}
    changes = []
    for name in sorted(set(metrics_a) | set(metrics_b)):
        if name in VOLATILE_METRIC_FIELDS:
            continue
        value_a = metrics_a.get(name)
        value_b = metrics_b.get(name)
        if value_a != value_b:
            changes.append(f"{name}: {value_a} -> {value_b}")
    return changes


def diff_stores(store_a: ResultStore, store_b: ResultStore) -> StoreDiff:
    """Compare two stores record-for-record (see module docstring for
    the matching rules)."""
    keys_a = set(store_a.keys())
    keys_b = set(store_b.keys())
    map_a = {key: key for key in store_a.keys()}
    map_b = {key: key for key in store_b.keys()}
    match_on = "key"
    if not (keys_a & keys_b) and keys_a and keys_b:
        # Disjoint spec hashes: same family, different spec content
        # (the controller-A/B shape) — line records up by (name, seed).
        # Only sound when (name, seed) is unique within each store; a
        # multi-family merged store would silently shadow records, so
        # such stores stay key-matched (everything diverges — the gate
        # fails safe instead of lying).
        by_name_a = {(e.name, e.seed): (e.spec_hash, e.seed)
                     for e in store_a.entries()}
        by_name_b = {(e.name, e.seed): (e.spec_hash, e.seed)
                     for e in store_b.entries()}
        if (len(by_name_a) == len(store_a.keys())
                and len(by_name_b) == len(store_b.keys())):
            match_on = "name_seed"
            map_a, map_b = by_name_a, by_name_b

    fps_a = store_a.fingerprints()
    fps_b = store_b.fingerprints()
    names_a = {(e.spec_hash, e.seed): e.name for e in store_a.entries()}
    names_b = {(e.spec_hash, e.seed): e.name for e in store_b.entries()}
    diff = StoreDiff(match_on=match_on)
    for key in sorted(set(map_a) | set(map_b), key=lambda k: (str(k[0]), k[1])):
        if key not in map_b:
            diff.entries.append(DiffEntry(key=key, name=names_a[map_a[key]],
                                          status="only_a"))
            continue
        if key not in map_a:
            diff.entries.append(DiffEntry(key=key, name=names_b[map_b[key]],
                                          status="only_b"))
            continue
        real_a, real_b = map_a[key], map_b[key]
        fp_a, fp_b = fps_a[real_a], fps_b[real_b]
        name = names_a[real_a]
        if fp_a == fp_b:
            # Matching keys never touch the records file: the whole
            # all-match gate runs off the index sidecars alone.
            diff.entries.append(DiffEntry(
                key=key, name=name, status="match",
                fingerprint_a=fp_a, fingerprint_b=fp_b))
            continue
        rec_a = store_a.get(*real_a)
        rec_b = store_b.get(*real_b)
        diff.entries.append(DiffEntry(
            key=key, name=name, status="fingerprint",
            fingerprint_a=fp_a, fingerprint_b=fp_b,
            verdict_changes=_verdict_changes(rec_a, rec_b),
            metric_changes=_metric_changes(rec_a, rec_b)))
    return diff
