"""Binary columnar segment files for :class:`ColumnarResultStore`.

A segment is an immutable, self-describing file holding a batch of
result records in column order:

* fixed-schema **metric columns** (float64 values + a presence mask)
  and the ``converged`` flag, stored raw so readers mmap them straight
  into numpy arrays — no parsing on the report path;
* the **SLO verdicts** as a CSR ragged array (per-row offsets into
  dictionary-encoded label/status id arrays);
* the **index block** (spec_hash, seed, name, fingerprint, error),
  zlib-compressed JSON — everything the resume question needs;
* two **paged blobs**: the full canonical-JSON record per row (the
  lossless side that ``get``/``iter_records``/digests read) and the
  canonical-JSON metrics dict per row (the cheap side the search
  leaderboard reads), both zlib-compressed in pages of
  ``page_rows`` rows;
* a JSON **footer** naming every block's byte range plus schema
  version, row count, dictionaries and provenance, followed by the
  footer length and a trailing magic.

The trailing magic is the torn-tail detector: a segment is only ever
published by an atomic rename after fsync, so a file that does not end
in ``RSEGEND1`` (or whose footer/blocks do not fit) is a crash's
debris and is dropped exactly like a torn JSONL tail.

numpy is required for the columnar format only — the JSONL store and
the rest of the library stay stdlib-pure.  Importing this module
without numpy raises :class:`~repro.core.errors.ConfigurationError`
at first use, not at import time.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.results.records import record_error, record_slos

MAGIC = b"RSEG0001"
END_MAGIC = b"RSEGEND1"
SEGMENT_VERSION = 1
SEGMENT_SUFFIX = ".rseg"

#: Rows per compressed payload page.  Small enough that a point read
#: (``get``) decompresses a few KB, large enough that near-identical
#: records compress against each other.
DEFAULT_PAGE_ROWS = 64

#: The fixed metric schema: every segment stores one float64 column
#: (plus presence mask) per name.  Metrics outside this set still
#: round-trip losslessly through the payload blob; they just are not
#: available columnar.  Keep this a superset of
#: :data:`repro.results.aggregate.ROLLUP_METRICS`.
METRIC_COLUMNS = (
    "convergence_time",
    "delivered_fraction",
    "max_recovery_seconds",
    "mean_recovery_seconds",
    "control_messages",
    "control_bytes",
    "events_fired",
    "recomputations",
    "wall_seconds",
)

#: Presence-mask values for a metric cell.
MASK_ABSENT = 0      # key not in metrics
MASK_NUMBER = 1      # real int/float (value column holds it)
MASK_PRESENT = 2     # present but not a rollup number (bool/None/str/...)

_ZLIB_LEVEL = 6

_np = None


def _numpy():
    """Import numpy lazily so the JSONL store works without it."""
    global _np
    if _np is None:
        try:
            import numpy
        except ImportError as exc:  # pragma: no cover - env without numpy
            raise ConfigurationError(
                "the columnar store format requires numpy; install it or "
                "use the default JSONL format") from exc
        _np = numpy
    return _np


def metric_cell(metrics: Dict[str, Any], name: str) -> Tuple[float, int]:
    """(value, mask) for one metric cell, mirroring
    :meth:`MetricRollup.add` semantics exactly: bools and None are
    *present* but never numbers."""
    if name not in metrics:
        return 0.0, MASK_ABSENT
    value = metrics[name]
    if isinstance(value, bool) or value is None:
        return 0.0, MASK_PRESENT
    if isinstance(value, (int, float)):
        return float(value), MASK_NUMBER
    return 0.0, MASK_PRESENT


def _paged_blob(chunks: "List[bytes]",
                page_rows: int) -> Tuple[bytes, bytes, bytes]:
    """Compress per-row byte strings into pages.

    Returns (pages, page_index, row_offsets): ``pages`` is the
    concatenation of zlib-compressed pages of ``page_rows`` rows each;
    ``page_index`` is uint64[(pages)+1] compressed-byte offsets;
    ``row_offsets`` is uint64[(rows)+1] offsets into the
    *uncompressed* concatenation (so a row's bytes are a slice of its
    decompressed page)."""
    np = _numpy()
    rows = len(chunks)
    row_offsets = np.zeros(rows + 1, dtype=np.uint64)
    total = 0
    for i, chunk in enumerate(chunks):
        total += len(chunk)
        row_offsets[i + 1] = total
    pages: List[bytes] = []
    page_offsets = [0]
    for start in range(0, rows, page_rows):
        page = zlib.compress(b"".join(chunks[start:start + page_rows]),
                             _ZLIB_LEVEL)
        pages.append(page)
        page_offsets.append(page_offsets[-1] + len(page))
    page_index = np.asarray(page_offsets, dtype=np.uint64)
    return b"".join(pages), page_index.tobytes(), row_offsets.tobytes()


def write_segment(path: str, records: "Sequence[Dict[str, Any]]", *,
                  page_rows: int = DEFAULT_PAGE_ROWS,
                  provenance: "Optional[Dict[str, Any]]" = None) -> None:
    """Write ``records`` as one segment file, atomically.

    The caller owns durability ordering (segments are published by
    rename *before* the WAL rows they absorb are dropped); this
    function fsyncs the file and its directory so the rename is the
    commit point.
    """
    np = _numpy()
    if not records:
        raise ValueError("refusing to write an empty segment")
    rows = len(records)

    spec_hashes: List[str] = []
    seeds: List[int] = []
    names: List[str] = []
    fingerprints: List[str] = []
    errors: List[bool] = []
    converged = np.zeros(rows, dtype=np.uint8)
    metric_values = {name: np.zeros(rows, dtype=np.float64)
                     for name in METRIC_COLUMNS}
    metric_masks = {name: np.zeros(rows, dtype=np.uint8)
                    for name in METRIC_COLUMNS}
    labels: List[str] = []
    label_ids: Dict[str, int] = {}
    statuses: List[str] = []
    status_ids: Dict[str, int] = {}
    slo_offsets = np.zeros(rows + 1, dtype=np.uint64)
    slo_labels: List[int] = []
    slo_statuses: List[int] = []
    payload_chunks: List[bytes] = []
    metrics_chunks: List[bytes] = []

    for row, record in enumerate(records):
        spec_hashes.append(record.get("spec_hash", ""))
        seeds.append(record.get("seed", 0))
        names.append(record.get("name", ""))
        fingerprints.append(record.get("fingerprint", ""))
        errors.append(record_error(record) is not None)
        metrics = record.get("metrics", {})
        if not isinstance(metrics, dict):
            metrics = {}
        if metrics.get("converged"):
            converged[row] = 1
        for name in METRIC_COLUMNS:
            value, mask = metric_cell(metrics, name)
            metric_values[name][row] = value
            metric_masks[name][row] = mask
        for verdict in record_slos(record):
            label = str(verdict.get("slo", ""))
            status = str(verdict.get("status", ""))
            if label not in label_ids:
                label_ids[label] = len(labels)
                labels.append(label)
            if status not in status_ids:
                status_ids[status] = len(statuses)
                statuses.append(status)
            slo_labels.append(label_ids[label])
            slo_statuses.append(status_ids[status])
        slo_offsets[row + 1] = len(slo_labels)
        payload_chunks.append(json.dumps(
            record, sort_keys=True,
            separators=(",", ":")).encode("utf-8"))
        metrics_chunks.append(json.dumps(
            metrics, sort_keys=True,
            separators=(",", ":")).encode("utf-8"))

    if len(labels) > 0xFFFF or len(statuses) > 0xFF:
        raise ConfigurationError(
            "segment SLO dictionary overflow: "
            f"{len(labels)} labels / {len(statuses)} statuses")

    index_block = zlib.compress(json.dumps({
        "spec_hash": spec_hashes,
        "seed": seeds,
        "name": names,
        "fingerprint": fingerprints,
        "error": [1 if err else 0 for err in errors],
    }, separators=(",", ":")).encode("utf-8"), _ZLIB_LEVEL)

    payload_pages, payload_pidx, payload_roff = _paged_blob(
        payload_chunks, page_rows)
    metrics_pages, metrics_pidx, metrics_roff = _paged_blob(
        metrics_chunks, page_rows)

    blocks: List[Tuple[str, bytes]] = [("index", index_block),
                                       ("converged", converged.tobytes())]
    for name in METRIC_COLUMNS:
        blocks.append((f"metric:{name}:values",
                       metric_values[name].tobytes()))
        blocks.append((f"metric:{name}:mask", metric_masks[name].tobytes()))
    blocks.extend([
        ("slo:offsets", slo_offsets.tobytes()),
        ("slo:labels", np.asarray(slo_labels, dtype=np.uint16).tobytes()),
        ("slo:statuses", np.asarray(slo_statuses, dtype=np.uint8).tobytes()),
        ("payload:pages", payload_pages),
        ("payload:page_index", payload_pidx),
        ("payload:row_offsets", payload_roff),
        ("metrics:pages", metrics_pages),
        ("metrics:page_index", metrics_pidx),
        ("metrics:row_offsets", metrics_roff),
    ])

    block_table: Dict[str, List[int]] = {}
    offset = len(MAGIC)
    crc = 0
    for name, payload in blocks:
        block_table[name] = [offset, len(payload)]
        offset += len(payload)
        crc = zlib.crc32(payload, crc)

    footer = json.dumps({
        "version": SEGMENT_VERSION,
        "rows": rows,
        "page_rows": page_rows,
        "metric_columns": list(METRIC_COLUMNS),
        "slo_label_dict": labels,
        "slo_status_dict": statuses,
        "blocks": block_table,
        "crc32": crc & 0xFFFFFFFF,
        "provenance": provenance or {},
    }, sort_keys=True, separators=(",", ":")).encode("utf-8")

    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(MAGIC)
        for _, payload in blocks:
            handle.write(payload)
        handle.write(footer)
        handle.write(len(footer).to_bytes(8, "little"))
        handle.write(END_MAGIC)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    try:
        dir_fd = os.open(os.path.dirname(path) or ".", os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:  # pragma: no cover - exotic filesystems
        pass


def _parse_footer(data) -> "Optional[Dict[str, Any]]":
    """Structural validation shared by the reader and
    :func:`is_valid_segment`; ``data`` is anything sliceable over the
    whole file (bytes or an mmap).  None means torn/corrupt."""
    size = len(data)
    floor = len(MAGIC) + 8 + len(END_MAGIC)
    if size < floor + 2:
        return None
    if (bytes(data[:len(MAGIC)]) != MAGIC
            or bytes(data[size - len(END_MAGIC):]) != END_MAGIC):
        return None
    footer_end = size - len(END_MAGIC) - 8
    footer_len = int.from_bytes(data[footer_end:footer_end + 8], "little")
    footer_start = footer_end - footer_len
    if footer_len <= 0 or footer_start < len(MAGIC):
        return None
    try:
        footer = json.loads(bytes(data[footer_start:footer_end]))
    except ValueError:
        return None
    if not isinstance(footer, dict) or footer.get("version") != SEGMENT_VERSION:
        return None
    blocks = footer.get("blocks")
    rows = footer.get("rows")
    if not isinstance(blocks, dict) or not isinstance(rows, int) or rows <= 0:
        return None
    for name, span in blocks.items():
        if (not isinstance(span, list) or len(span) != 2
                or not all(isinstance(v, int) and v >= 0 for v in span)
                or span[0] + span[1] > footer_start):
            return None
    if "index" not in blocks or "payload:pages" not in blocks:
        return None
    return footer


def is_valid_segment(path: str, deep: bool = False) -> bool:
    """Structural check that ``path`` is a complete segment.  With
    ``deep``, also verify the data-region CRC (full read — use in
    tests and fsck-style tools, not on the open path)."""
    import mmap as _mmap
    try:
        with open(path, "rb") as handle:
            try:
                mm = _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
            except ValueError:
                return False
            try:
                footer = _parse_footer(mm)
                if footer is None:
                    return False
                if deep:
                    crc = 0
                    for name in sorted(footer["blocks"],
                                       key=lambda k: footer["blocks"][k][0]):
                        off, length = footer["blocks"][name]
                        crc = zlib.crc32(mm[off:off + length], crc)
                    if (crc & 0xFFFFFFFF) != footer.get("crc32"):
                        return False
            finally:
                mm.close()
    except OSError:
        return False
    return True


class SegmentReader:
    """mmap-backed reader for one segment file.

    Raw columns come back as zero-copy numpy views over the mapping;
    payload/metrics rows decompress one page at a time with a
    one-page cache per blob (sequential scans decompress each page
    exactly once)."""

    def __init__(self, path: str):
        import mmap as _mmap
        np = _numpy()
        self.path = path
        self._file = open(path, "rb")
        try:
            self._mm = _mmap.mmap(self._file.fileno(), 0,
                                  access=_mmap.ACCESS_READ)
        except ValueError:
            self._file.close()
            raise ConfigurationError(f"segment {path!r} is empty")
        footer = _parse_footer(self._mm)
        if footer is None:
            self.close()
            raise ConfigurationError(
                f"segment {path!r} is torn or corrupt")
        self.footer = footer
        self.rows: int = footer["rows"]
        self.page_rows: int = footer.get("page_rows", DEFAULT_PAGE_ROWS)
        self.metric_columns: List[str] = list(footer["metric_columns"])
        self.slo_label_dict: List[str] = list(footer["slo_label_dict"])
        self.slo_status_dict: List[str] = list(footer["slo_status_dict"])
        self._blocks: Dict[str, Tuple[int, int]] = {
            name: (span[0], span[1])
            for name, span in footer["blocks"].items()}
        self._np = np
        self._index: "Optional[Dict[str, list]]" = None
        self._page_cache: Dict[str, Tuple[int, bytes]] = {}

    # -- raw blocks --------------------------------------------------------

    def _span(self, name: str) -> Tuple[int, int]:
        try:
            return self._blocks[name]
        except KeyError:
            raise ConfigurationError(
                f"segment {self.path!r} has no block {name!r}") from None

    def _raw(self, name: str) -> memoryview:
        offset, length = self._span(name)
        return memoryview(self._mm)[offset:offset + length]

    def _array(self, name: str, dtype: str):
        return self._np.frombuffer(self._raw(name), dtype=dtype)

    # -- index -------------------------------------------------------------

    def index_columns(self) -> Dict[str, list]:
        """Decoded index block: parallel lists spec_hash / seed /
        name / fingerprint / error."""
        if self._index is None:
            raw = zlib.decompress(self._raw("index"))
            data = json.loads(raw)
            for column in ("spec_hash", "seed", "name", "fingerprint",
                           "error"):
                if (column not in data
                        or len(data[column]) != self.rows):
                    raise ConfigurationError(
                        f"segment {self.path!r} index block is malformed")
            self._index = data
        return self._index

    def iter_index(self) -> Iterator[Tuple[str, int, str, str, bool]]:
        idx = self.index_columns()
        for row in range(self.rows):
            yield (idx["spec_hash"][row], idx["seed"][row],
                   idx["name"][row], idx["fingerprint"][row],
                   bool(idx["error"][row]))

    # -- columns -----------------------------------------------------------

    @property
    def converged(self):
        return self._array("converged", "u1")

    @property
    def errors(self):
        idx = self.index_columns()
        return self._np.asarray(idx["error"], dtype=self._np.uint8)

    def metric(self, name: str):
        """(values float64, mask uint8) for one metric column, or
        ``None`` when this segment predates the column."""
        if name not in self.metric_columns:
            return None
        return (self._array(f"metric:{name}:values", "<f8"),
                self._array(f"metric:{name}:mask", "u1"))

    def slo(self):
        """(offsets u64[rows+1], label_ids u16, status_ids u8,
        labels, statuses)."""
        return (self._array("slo:offsets", "<u8"),
                self._array("slo:labels", "<u2"),
                self._array("slo:statuses", "u1"),
                self.slo_label_dict, self.slo_status_dict)

    # -- paged blobs -------------------------------------------------------

    def _row_bytes(self, blob: str, row: int) -> bytes:
        if not 0 <= row < self.rows:
            raise IndexError(row)
        page = row // self.page_rows
        cached = self._page_cache.get(blob)
        if cached is None or cached[0] != page:
            page_index = self._array(f"{blob}:page_index", "<u8")
            start, end = int(page_index[page]), int(page_index[page + 1])
            pages_off, _ = self._span(f"{blob}:pages")
            data = zlib.decompress(
                self._mm[pages_off + start:pages_off + end])
            cached = (page, data)
            self._page_cache[blob] = cached
        row_offsets = self._array(f"{blob}:row_offsets", "<u8")
        base = int(row_offsets[page * self.page_rows])
        lo = int(row_offsets[row]) - base
        hi = int(row_offsets[row + 1]) - base
        return cached[1][lo:hi]

    def payload(self, row: int) -> bytes:
        """The row's full record, canonical JSON bytes."""
        return self._row_bytes("payload", row)

    def metrics_bytes(self, row: int) -> bytes:
        """The row's metrics dict, canonical JSON bytes."""
        return self._row_bytes("metrics", row)

    def record(self, row: int) -> Dict[str, Any]:
        return json.loads(self.payload(row))

    def iter_payloads(
            self, rows: "Optional[Sequence[int]]" = None
    ) -> Iterator[Tuple[int, bytes]]:
        """(row, payload bytes) for ``rows`` (default: all), ascending.
        Sequential by construction: each page decompresses once."""
        iterable = range(self.rows) if rows is None else rows
        for row in iterable:
            yield row, self._row_bytes("payload", row)

    def close(self) -> None:
        mm = getattr(self, "_mm", None)
        if mm is not None:
            try:
                mm.close()
            except (BufferError, ValueError):  # pragma: no cover
                pass  # a live numpy view pins the mapping; drop on GC
            self._mm = None
        if not self._file.closed:
            self._file.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SegmentReader {self.path!r} rows={self.rows}>"
