"""Streaming, append-only, resumable persistence for campaign results.

A :class:`ResultStore` is a directory holding two files:

* ``records.jsonl`` — one self-describing record per line (see
  :mod:`repro.results.records`), appended the moment each scenario
  finishes, so a 10 000-scenario sweep never holds results in memory
  and a killed sweep loses at most the scenario it was writing;
* ``index.jsonl``   — a sidecar with one small line per record
  (spec_hash, seed, name, fingerprint, byte offset).  Opening a store
  reads only the sidecar, so "which (spec, seed) pairs already ran?"
  — the resume question — never scans the full records file.

The sidecar is derived state: if it is missing, truncated (a crash
between the record write and the index write), or unparsable, opening
the store rebuilds it from ``records.jsonl``.  A partial trailing
record line (killed mid-write) is dropped during the rebuild, which is
exactly the at-most-one-scenario loss the resume contract allows.

Single-writer, many-reader: campaigns append from one process (workers
return results to the parent, which writes); readers open with
``readonly=True`` so they stream without repairing anything on disk.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError
from repro.obs.metrics import metrics
from repro.results.records import (
    RESULT_SCHEMA_VERSION,
    VOLATILE_METRIC_FIELDS,
    VOLATILE_RESULT_FIELDS,
    record_error,
    record_key,
)

RECORDS_FILE = "records.jsonl"
INDEX_FILE = "index.jsonl"
METADATA_FILE = "meta.json"

#: Subdirectory of a fleet campaign's target store where per-worker
#: shard stores live until they are merged.
SHARDS_DIR = "shards"


def shard_store_name(worker_id: str) -> str:
    """Canonical directory name for one worker's shard store.

    Worker ids come from the network (``repro fleet join`` names
    itself), so everything but a safe character set is mapped to ``_``
    before it becomes a path component.
    """
    safe = "".join(ch if ch.isalnum() or ch in "-._" else "_"
                   for ch in worker_id)
    return f"shard-{safe or 'worker'}"


def list_shards(root: str) -> List[str]:
    """Shard store directories under ``root``, in sorted (canonical)
    order — the deterministic tie-break order for merge dedup."""
    if not os.path.isdir(root):
        return []
    return sorted(
        os.path.join(root, name) for name in os.listdir(root)
        if name.startswith("shard-")
        and os.path.isdir(os.path.join(root, name)))


@dataclass
class IndexEntry:
    """One sidecar line: where a record lives and what it claims.

    ``error`` marks a fault-isolation record (the scenario died); it
    lets resume decide to retry such pairs without parsing records.
    A key appearing on several sidecar lines means the later line
    superseded the earlier (an error retried into a real result) —
    loading keeps the last.
    """

    spec_hash: str
    seed: int
    name: str
    fingerprint: str
    offset: int
    error: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {"spec_hash": self.spec_hash, "seed": self.seed,
                "name": self.name, "fingerprint": self.fingerprint,
                "offset": self.offset, "error": self.error}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "IndexEntry":
        return cls(spec_hash=data["spec_hash"], seed=data["seed"],
                   name=data["name"], fingerprint=data["fingerprint"],
                   offset=data["offset"], error=data.get("error", False))


class ResultStore:
    """Append-only JSONL store keyed by (spec_hash, seed).

    ``readonly=True`` opens the store without *any* on-disk repair —
    torn tails and stale sidecars are handled in memory only, and
    :meth:`append` refuses.  Readers (report/check on a sweep that may
    still be running) must use it: the writer's in-flight record looks
    exactly like a crash's torn tail, and a repairing reader would
    truncate it out from under the writer.

    Two on-disk formats share this one API.  The constructor detects
    which one a directory holds and returns the right class: the
    default JSONL layout implemented here, or the columnar segment
    layout of :class:`repro.results.columnar.ColumnarResultStore`.
    ``format="columnar"`` (or ``"jsonl"``) pins the format when
    *creating* a store; opening an existing store with the wrong pin
    is an error rather than a silent reinterpretation.
    """

    def __new__(cls, path: str, create: bool = True,
                readonly: bool = False,
                format: "Optional[str]" = None, **kwargs):
        if cls is ResultStore:
            from repro.results.columnar import (
                FORMAT_NAME,
                ColumnarResultStore,
                is_columnar_store,
            )
            if format not in (None, "jsonl", FORMAT_NAME):
                raise ConfigurationError(
                    f"unknown store format {format!r} "
                    f"(expected 'jsonl' or {FORMAT_NAME!r})")
            detected = is_columnar_store(path)
            if detected and format == "jsonl":
                raise ConfigurationError(
                    f"store {path!r} is columnar but format='jsonl' "
                    "was requested; use 'repro store convert'")
            if detected or format == FORMAT_NAME:
                return object.__new__(ColumnarResultStore)
        return object.__new__(cls)

    def __init__(self, path: str, create: bool = True,
                 readonly: bool = False,
                 format: "Optional[str]" = None):
        if format not in (None, "jsonl"):
            raise ConfigurationError(
                f"store {path!r} is JSONL but format={format!r} "
                "was requested")
        self.path = os.path.abspath(path)
        self.readonly = readonly
        if not os.path.isdir(self.path):
            if not create or readonly:
                raise ConfigurationError(
                    f"result store {path!r} does not exist")
            os.makedirs(self.path, exist_ok=True)
        self.records_path = os.path.join(self.path, RECORDS_FILE)
        self.index_path = os.path.join(self.path, INDEX_FILE)
        self.metadata_path = os.path.join(self.path, METADATA_FILE)
        self._index: Dict[Tuple[str, int], IndexEntry] = {}
        self._order: List[Tuple[str, int]] = []
        self._load_index()

    # -- loading -----------------------------------------------------------

    def _load_index_entries(self) -> List[IndexEntry]:
        """Sidecar entries (rebuilt from the records file whenever the
        sidecar disagrees with or lags it), in file order — the shared
        loader for both the JSONL store and the columnar tail."""
        if not os.path.exists(self.records_path):
            # No records: a leftover sidecar is stale (partial copy,
            # manual deletion) — drop it before it grafts phantom keys
            # onto future appends.
            if not self.readonly and os.path.exists(self.index_path):
                os.remove(self.index_path)
            return []
        entries = self._read_sidecar()
        if entries is None or not self._sidecar_is_complete(entries):
            entries = self._rebuild_index()
        return entries

    def _load_index(self) -> None:
        for entry in self._load_index_entries():
            self._admit(entry)

    def _admit(self, entry: IndexEntry) -> None:
        """Fold one sidecar line into the in-memory index; a repeated
        key supersedes (last line wins), keeping its original slot in
        the append order."""
        key = (entry.spec_hash, entry.seed)
        if key not in self._index:
            self._order.append(key)
        self._index[key] = entry

    def _read_sidecar(self) -> "Optional[List[IndexEntry]]":
        if not os.path.exists(self.index_path):
            return None
        entries: List[IndexEntry] = []
        try:
            with open(self.index_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    if line.strip():
                        entries.append(IndexEntry.from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError):
            return None
        return entries

    def _sidecar_is_complete(self, entries: List[IndexEntry]) -> bool:
        """The sidecar covers the records file iff the byte past the
        furthest indexed record is the end of the file (modulo a
        partial trailing line a crash left behind, which a rebuild
        drops)."""
        size = os.path.getsize(self.records_path)
        if not entries:
            return size == 0
        last = max(entries, key=lambda entry: entry.offset)
        with open(self.records_path, "rb") as handle:
            handle.seek(last.offset)
            line = handle.readline()
            if not line.endswith(b"\n"):
                return False
            return handle.tell() == size

    def _rebuild_index(self) -> List[IndexEntry]:
        """Re-derive the index by scanning records.jsonl.  A key met
        twice keeps the later record (a retried error); a
        complete-but-unparsable line is skipped (its offset simply
        stays dead).  Writable opens also repair the disk: the sidecar
        is rewritten atomically and a torn trailing line (crash
        mid-write) is physically truncated away — otherwise the next
        append would glue its record onto the partial line, corrupting
        it.  Read-only opens skip both repairs (the "torn tail" may be
        a concurrent writer's in-flight record)."""
        entries: List[IndexEntry] = []
        truncate_at = None
        with open(self.records_path, "rb") as handle:
            offset = 0
            for line in handle:
                if not line.endswith(b"\n"):
                    truncate_at = offset
                    break  # torn tail from a crash mid-write
                try:
                    record = json.loads(line)
                    entries.append(IndexEntry(
                        spec_hash=record["spec_hash"],
                        seed=record["seed"],
                        name=record.get("name", ""),
                        fingerprint=record.get("fingerprint", ""),
                        offset=offset,
                        error=record_error(record) is not None,
                    ))
                except (ValueError, KeyError, TypeError):
                    pass  # complete but corrupt line: skip it alone
                offset += len(line)
        if self.readonly:
            return entries
        if truncate_at is not None:
            with open(self.records_path, "r+b") as handle:
                handle.truncate(truncate_at)
        tmp_path = self.index_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry.to_dict(), sort_keys=True)
                             + "\n")
        os.replace(tmp_path, self.index_path)
        return entries

    # -- writing -----------------------------------------------------------

    def append(self, record: Dict[str, Any],
               replace: bool = False) -> IndexEntry:
        """Persist one finished scenario's record.

        The record line is written and flushed before its index line,
        so a crash can leave an unindexed record (healed by rebuild)
        but never an index entry pointing at nothing.

        ``replace=True`` supersedes an existing record for the same
        key (append-only on disk; the index moves to the new line) —
        how a retried error record is replaced by a real result.
        """
        if self.readonly:
            raise ConfigurationError(
                f"result store {self.path!r} was opened read-only")
        key = record_key(record)
        if key in self._index and not replace:
            raise ConfigurationError(
                f"store already holds a record for spec_hash={key[0]} "
                f"seed={key[1]}")
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        # Binary append so offsets are true byte positions (text-mode
        # tell() returns opaque cookies).
        with open(self.records_path, "ab") as handle:
            handle.seek(0, os.SEEK_END)
            offset = handle.tell()
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        entry = IndexEntry(spec_hash=key[0], seed=key[1],
                           name=record.get("name", ""),
                           fingerprint=record.get("fingerprint", ""),
                           offset=offset,
                           error=record_error(record) is not None)
        with open(self.index_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
        self._admit(entry)
        metrics().counter("store.appends").inc()
        return entry

    def append_many(self, records: "Sequence[Dict[str, Any]]",
                    replace: bool = False) -> List[IndexEntry]:
        """Batched :meth:`append`: one open, one fsync, for the whole
        batch — the bulk-load path (merge, convert, benchmarks) where
        per-record fsyncs would dominate.  Same crash semantics as
        single appends: record lines land (and sync) before their
        index lines, so a crash can only lose index lines a rebuild
        re-derives."""
        if self.readonly:
            raise ConfigurationError(
                f"result store {self.path!r} was opened read-only")
        if not records:
            return []
        if not replace:
            seen = set()
            for record in records:
                key = record_key(record)
                if key in self._index or key in seen:
                    raise ConfigurationError(
                        f"store already holds a record for "
                        f"spec_hash={key[0]} seed={key[1]}")
                seen.add(key)
        entries: List[IndexEntry] = []
        with open(self.records_path, "ab") as handle:
            handle.seek(0, os.SEEK_END)
            for record in records:
                key = record_key(record)
                offset = handle.tell()
                handle.write((json.dumps(record, sort_keys=True) + "\n")
                             .encode("utf-8"))
                entries.append(IndexEntry(
                    spec_hash=key[0], seed=key[1],
                    name=record.get("name", ""),
                    fingerprint=record.get("fingerprint", ""),
                    offset=offset,
                    error=record_error(record) is not None))
            handle.flush()
            os.fsync(handle.fileno())
        with open(self.index_path, "a", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry.to_dict(), sort_keys=True)
                             + "\n")
        for entry in entries:
            self._admit(entry)
        metrics().counter("store.appends").inc(len(entries))
        return entries

    # -- merge / compaction ------------------------------------------------

    def merge_from(
        self,
        sources: "Sequence[ResultStore]",
        order: "Optional[Sequence[Tuple[str, int]]]" = None,
        replace_errors: bool = True,
    ) -> int:
        """Fold records from shard stores into this one, dedup by key.

        The dedup rule is deterministic regardless of which worker ran
        what when: for every key, a *healthy* record beats an error
        record, and ties break by source position (callers pass shards
        in sorted name order — see :func:`list_shards`).  ``order``
        fixes the append order of the merged records (a fleet
        coordinator passes the sweep's spec order so the merged store
        is record-for-record identical to a single-box run); keys the
        sources hold that are not in ``order`` follow, in first-source
        order.  Keys already present in this store are skipped —
        unless ``replace_errors`` and the resident record is an error
        record while a source offers a healthy one, in which case the
        healthy record supersedes it.

        Returns the number of records appended.

        Dedup streams against the *resident* index: a source entry
        that cannot possibly win (its key is already here and not an
        error a healthy candidate may supersede) is dropped the moment
        it is seen, so merge memory is proportional to the records
        actually merged — not to the union of all shard indexes, which
        a resumed fleet merging mostly-duplicate shards used to pay
        on every call.
        """
        if self.readonly:
            raise ConfigurationError(
                f"result store {self.path!r} was opened read-only")
        # key -> (source, entry) of the winning candidate.
        best: Dict[Tuple[str, int], Tuple["ResultStore", IndexEntry]] = {}
        arrival: List[Tuple[str, int]] = []
        for source in sources:
            for entry in source.iter_entries():
                key = (entry.spec_hash, entry.seed)
                resident = self._index.get(key)
                if resident is not None and not (
                        replace_errors and resident.error
                        and not entry.error):
                    continue  # can never win against the resident
                if key not in best:
                    best[key] = (source, entry)
                    arrival.append(key)
                elif best[key][1].error and not entry.error:
                    best[key] = (source, entry)
        keys = list(order) if order is not None else []
        keys = [tuple(key) for key in keys if tuple(key) in best]
        ordered = set(keys)
        picks = keys + [key for key in arrival if key not in ordered]
        if not picks:
            return 0
        # Batched append: the source shards are already durable, so
        # one fsync covers the whole merge instead of one per record
        # (same crash semantics as append(): records land before
        # index lines, a torn tail heals on rebuild, a repeated key's
        # later line supersedes).  Each source is read through one
        # persistent reader (picks interleave sources in canonical
        # order, so per-pick get() opens would defeat streaming);
        # _open_reader lets columnar sources serve segment rows.
        metrics().counter("store.merges").inc()
        entries: List[IndexEntry] = []
        readers: Dict[int, _RecordReader] = {}
        try:
            with open(self.records_path, "ab") as handle:
                handle.seek(0, os.SEEK_END)
                for key in picks:
                    source = best[key][0]
                    reader = readers.get(id(source))
                    if reader is None:
                        reader = source._open_reader()
                        readers[id(source)] = reader
                    record = reader.fetch(key)
                    offset = handle.tell()
                    handle.write((json.dumps(record, sort_keys=True) + "\n")
                                 .encode("utf-8"))
                    entries.append(IndexEntry(
                        spec_hash=key[0], seed=key[1],
                        name=record.get("name", ""),
                        fingerprint=record.get("fingerprint", ""),
                        offset=offset,
                        error=record_error(record) is not None))
                handle.flush()
                os.fsync(handle.fileno())
        finally:
            for reader in readers.values():
                reader.close()
        with open(self.index_path, "a", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry.to_dict(), sort_keys=True)
                             + "\n")
        for entry in entries:
            self._admit(entry)
        metrics().counter("store.merged_records").inc(len(entries))
        return len(entries)

    def compact(self) -> int:
        """Rewrite ``records.jsonl`` keeping only the live records, in
        index (append) order — dropping superseded lines (retried
        errors) and dead bytes.  Returns the bytes reclaimed.  The
        sidecar is rebuilt to match; both files are replaced
        atomically."""
        if self.readonly:
            raise ConfigurationError(
                f"result store {self.path!r} was opened read-only")
        if not os.path.exists(self.records_path):
            return 0
        before = os.path.getsize(self.records_path)
        tmp_records = self.records_path + ".tmp"
        entries: List[IndexEntry] = []
        with open(tmp_records, "wb") as handle:
            for key, record in zip(self._order,
                                   self.records_at(self._order)):
                old = self._index[key]
                offset = handle.tell()
                handle.write((json.dumps(record, sort_keys=True) + "\n")
                             .encode("utf-8"))
                entries.append(IndexEntry(
                    spec_hash=old.spec_hash, seed=old.seed, name=old.name,
                    fingerprint=old.fingerprint, offset=offset,
                    error=old.error))
            handle.flush()
            os.fsync(handle.fileno())
        tmp_index = self.index_path + ".tmp"
        with open(tmp_index, "w", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry.to_dict(), sort_keys=True)
                             + "\n")
        os.replace(tmp_records, self.records_path)
        os.replace(tmp_index, self.index_path)
        self._index = {(e.spec_hash, e.seed): e for e in entries}
        self._order = [(e.spec_hash, e.seed) for e in entries]
        return before - os.path.getsize(self.records_path)

    # -- metadata ----------------------------------------------------------

    @property
    def metadata(self) -> Dict[str, Any]:
        """The store's self-description (``meta.json``): free-form,
        never part of record identity or equality.  Missing or corrupt
        metadata reads as ``{}`` — records are the source of truth."""
        try:
            with open(self.metadata_path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return {}
        return data if isinstance(data, dict) else {}

    def update_metadata(self, updates: Dict[str, Any]) -> Dict[str, Any]:
        """Shallow-merge ``updates`` into ``meta.json`` (atomic
        replace) and return the new metadata."""
        if self.readonly:
            raise ConfigurationError(
                f"result store {self.path!r} was opened read-only")
        data = self.metadata
        data.update(updates)
        tmp_path = self.metadata_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, self.metadata_path)
        return data

    def record_provenance(self, entry: Dict[str, Any]) -> None:
        """Append one run-provenance entry (worker count, transport,
        chunk size, repro version, ...) to ``meta["runs"]`` so a
        merged or resumed store is self-describing."""
        runs = self.metadata.get("runs")
        runs = list(runs) if isinstance(runs, list) else []
        runs.append(entry)
        self.update_metadata({"runs": runs})

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return tuple(key) in self._index

    def keys(self) -> List[Tuple[str, int]]:
        """(spec_hash, seed) pairs in append order."""
        return list(self._order)

    def has_error(self, key: Tuple[str, int]) -> bool:
        """True when the key's (current) record is a fault-isolation
        error record — the pairs ``retry_errors`` reruns."""
        entry = self._index.get(tuple(key))
        return entry is not None and entry.error

    def errored_keys(self) -> List[Tuple[str, int]]:
        """Keys whose current record is an error record."""
        return [key for key in self._order if self._index[key].error]

    def entries(self) -> List[IndexEntry]:
        """Index entries in append order (no record parsing)."""
        return [self._index[key] for key in self._order]

    def iter_entries(self) -> Iterator[IndexEntry]:
        """Streaming form of :meth:`entries` — what merges iterate so
        a many-source merge never materializes source indexes."""
        for key in self._order:
            yield self._index[key]

    @property
    def storage_format(self) -> str:
        """"jsonl" here; "columnar" on the columnar subclass.  The
        knob callers (fleet shard creation, convert) pass back into
        ``ResultStore(format=...)`` to make a like-formatted store."""
        return "jsonl"

    def _open_reader(self) -> "_RecordReader":
        """A persistent-handle record fetcher for merges; the columnar
        subclass returns one that also serves segment rows."""
        return _RecordReader(self)

    def get(self, spec_hash: str, seed: int) -> Dict[str, Any]:
        """Load one record by key (one seek, one line parse)."""
        try:
            entry = self._index[(spec_hash, seed)]
        except KeyError:
            raise KeyError(
                f"no record for spec_hash={spec_hash} seed={seed}") from None
        with open(self.records_path, "rb") as handle:
            handle.seek(entry.offset)
            return json.loads(handle.readline())

    def records_at(self,
                   keys: "Sequence[Tuple[str, int]]") -> Iterator[Dict[str, Any]]:
        """Stream the records for ``keys`` (in that order) through ONE
        open handle — the bulk form of :meth:`get` that merge,
        compaction and digests use so an N-record pass costs one open,
        not N."""
        if not keys:
            return
        with open(self.records_path, "rb") as handle:
            for key in keys:
                entry = self._index[tuple(key)]
                handle.seek(entry.offset)
                yield json.loads(handle.readline())

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        """Stream every *live* record in file order, one line in
        memory at a time — the aggregation/report path for huge
        sweeps.  Superseded lines (an error record later replaced by a
        retry) and an unindexed/torn tail are skipped."""
        if not os.path.exists(self.records_path):
            return
        live = {entry.offset for entry in self._index.values()}
        with open(self.records_path, "rb") as handle:
            offset = 0
            for line in handle:
                if offset in live:
                    yield json.loads(line)
                offset += len(line)

    def fingerprints(self) -> Dict[Tuple[str, int], str]:
        """key -> result fingerprint, from the sidecar alone."""
        return {key: self._index[key].fingerprint for key in self._order}

    def canonical_digest(self) -> str:
        """Digest of the store's *deterministic* content, in canonical
        key order: every live record with the repo-wide volatile fields
        (``result.wall_seconds``, ``result.diagnostics``) removed,
        hashed key-by-key.  Two stores holding the same sweep — single
        box or merged from a fleet's shards, run now or resumed later,
        persisted JSONL or columnar — digest identically; any
        divergent measurement, verdict or spec does not.  This is the
        store-level form of the scenario reproducibility contract
        (wall clock and engine internals are excluded from equality
        everywhere)."""
        digest = hashlib.sha256()
        ordered = sorted(self._order)
        for record in self.records_at(ordered):
            digest.update(_cleaned_canonical(record))
        return digest.hexdigest()[:16]

    def aggregate(self) -> "Any":
        """The report/check rollup for this store — one streaming pass
        here; the columnar subclass computes the same aggregate
        straight off its metric columns."""
        from repro.results.aggregate import aggregate_records

        return aggregate_records(self.iter_records())

    def count_failing_slos(self, keys: "Sequence[Tuple[str, int]]") -> int:
        """Non-passing SLO verdicts across the records for ``keys`` —
        the fleet coordinator's post-merge tally (columnar stores
        answer it from the verdict columns without parsing records)."""
        from repro.results.records import record_slos

        total = 0
        for record in self.records_at([tuple(key) for key in keys]):
            total += sum(1 for verdict in record_slos(record)
                         if verdict.get("status") != "pass")
        return total

    def iter_entry_metrics(
            self) -> "Iterator[Tuple[IndexEntry, Dict[str, Any]]]":
        """(index entry, metrics dict) per live record, in record
        order — what the search leaderboard ranks on.  Columnar stores
        serve this off a compact metrics column without decompressing
        full payloads."""
        for record in self.iter_records():
            entry = self._index.get(record_key(record))
            metrics = record.get("metrics", {})
            yield entry, metrics if isinstance(metrics, dict) else {}

    def entry_metrics_at(
            self, keys: "Sequence[Tuple[str, int]]",
    ) -> "Iterator[Tuple[IndexEntry, Dict[str, Any]]]":
        """(index entry, metrics) for ``keys``, in that order — the
        keyed form of :meth:`iter_entry_metrics` the search scoring
        loop uses.  ``entry.error`` carries the errored-record flag, so
        callers never need the full record to score a candidate; the
        columnar subclass serves sealed rows straight off the metrics
        column without decompressing payloads."""
        for record in self.records_at([tuple(key) for key in keys]):
            entry = self._index[record_key(record)]
            metrics = record.get("metrics", {})
            yield entry, metrics if isinstance(metrics, dict) else {}

    def iter_csv_rows(
            self) -> "Iterator[Tuple[Dict[str, Any], List[str]]]":
        """(flat CSV row, column names) per live record, in record
        order — the source ``repro campaign report --csv`` writes out
        via :func:`repro.results.aggregate.write_csv_rows`.  The
        columnar subclass builds healthy rows straight from its index,
        metrics and SLO columns and only parses the payloads of
        errored rows (the ones whose error string lives in the
        record)."""
        from repro.results.aggregate import _csv_row

        for record in self.iter_records():
            yield _csv_row(record)

    def schema_versions(self) -> Dict[int, int]:
        """schema_version -> record count (streaming scan)."""
        versions: Dict[int, int] = {}
        for record in self.iter_records():
            version = record.get("schema_version", 1)
            versions[version] = versions.get(version, 0) + 1
        return versions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ResultStore {self.path!r} records={len(self)} "
                f"schema=v{RESULT_SCHEMA_VERSION}>")


def _cleaned_canonical(record: Dict[str, Any]) -> bytes:
    """One record's contribution to :meth:`canonical_digest`: volatile
    fields removed, canonical JSON, newline-terminated.  Both store
    formats hash exactly these bytes."""
    record = dict(record)
    result = dict(record.get("result", {}))
    for field_name in VOLATILE_RESULT_FIELDS:
        result.pop(field_name, None)
    record["result"] = result
    metrics = record.get("metrics")
    if isinstance(metrics, dict):
        metrics = dict(metrics)
        for field_name in VOLATILE_METRIC_FIELDS:
            metrics.pop(field_name, None)
        record["metrics"] = metrics
    return (json.dumps(record, sort_keys=True,
                       separators=(",", ":")) + "\n").encode("utf-8")


class _RecordReader:
    """One persistent read handle over a store's records file, used by
    merges to fetch picked records without per-record opens."""

    def __init__(self, store: ResultStore):
        self.store = store
        self._handle: "Optional[Any]" = None

    def fetch(self, key: Tuple[str, int]) -> Dict[str, Any]:
        if self._handle is None:
            self._handle = open(self.store.records_path, "rb")
        self._handle.seek(self.store._index[key].offset)
        return json.loads(self._handle.readline())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
