"""Streaming, append-only, resumable persistence for campaign results.

A :class:`ResultStore` is a directory holding two files:

* ``records.jsonl`` — one self-describing record per line (see
  :mod:`repro.results.records`), appended the moment each scenario
  finishes, so a 10 000-scenario sweep never holds results in memory
  and a killed sweep loses at most the scenario it was writing;
* ``index.jsonl``   — a sidecar with one small line per record
  (spec_hash, seed, name, fingerprint, byte offset).  Opening a store
  reads only the sidecar, so "which (spec, seed) pairs already ran?"
  — the resume question — never scans the full records file.

The sidecar is derived state: if it is missing, truncated (a crash
between the record write and the index write), or unparsable, opening
the store rebuilds it from ``records.jsonl``.  A partial trailing
record line (killed mid-write) is dropped during the rebuild, which is
exactly the at-most-one-scenario loss the resume contract allows.

Single-writer, many-reader: campaigns append from one process (workers
return results to the parent, which writes); readers open with
``readonly=True`` so they stream without repairing anything on disk.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.results.records import (
    RESULT_SCHEMA_VERSION,
    record_error,
    record_key,
)

RECORDS_FILE = "records.jsonl"
INDEX_FILE = "index.jsonl"


@dataclass
class IndexEntry:
    """One sidecar line: where a record lives and what it claims.

    ``error`` marks a fault-isolation record (the scenario died); it
    lets resume decide to retry such pairs without parsing records.
    A key appearing on several sidecar lines means the later line
    superseded the earlier (an error retried into a real result) —
    loading keeps the last.
    """

    spec_hash: str
    seed: int
    name: str
    fingerprint: str
    offset: int
    error: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {"spec_hash": self.spec_hash, "seed": self.seed,
                "name": self.name, "fingerprint": self.fingerprint,
                "offset": self.offset, "error": self.error}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "IndexEntry":
        return cls(spec_hash=data["spec_hash"], seed=data["seed"],
                   name=data["name"], fingerprint=data["fingerprint"],
                   offset=data["offset"], error=data.get("error", False))


class ResultStore:
    """Append-only JSONL store keyed by (spec_hash, seed).

    ``readonly=True`` opens the store without *any* on-disk repair —
    torn tails and stale sidecars are handled in memory only, and
    :meth:`append` refuses.  Readers (report/check on a sweep that may
    still be running) must use it: the writer's in-flight record looks
    exactly like a crash's torn tail, and a repairing reader would
    truncate it out from under the writer.
    """

    def __init__(self, path: str, create: bool = True,
                 readonly: bool = False):
        self.path = os.path.abspath(path)
        self.readonly = readonly
        if not os.path.isdir(self.path):
            if not create or readonly:
                raise ConfigurationError(
                    f"result store {path!r} does not exist")
            os.makedirs(self.path, exist_ok=True)
        self.records_path = os.path.join(self.path, RECORDS_FILE)
        self.index_path = os.path.join(self.path, INDEX_FILE)
        self._index: Dict[Tuple[str, int], IndexEntry] = {}
        self._order: List[Tuple[str, int]] = []
        self._load_index()

    # -- loading -----------------------------------------------------------

    def _load_index(self) -> None:
        """Read the sidecar; fall back to a full rebuild whenever it
        disagrees with (or lags) the records file."""
        if not os.path.exists(self.records_path):
            # No records: a leftover sidecar is stale (partial copy,
            # manual deletion) — drop it before it grafts phantom keys
            # onto future appends.
            if not self.readonly and os.path.exists(self.index_path):
                os.remove(self.index_path)
            return
        entries = self._read_sidecar()
        if entries is None or not self._sidecar_is_complete(entries):
            entries = self._rebuild_index()
        for entry in entries:
            self._admit(entry)

    def _admit(self, entry: IndexEntry) -> None:
        """Fold one sidecar line into the in-memory index; a repeated
        key supersedes (last line wins), keeping its original slot in
        the append order."""
        key = (entry.spec_hash, entry.seed)
        if key not in self._index:
            self._order.append(key)
        self._index[key] = entry

    def _read_sidecar(self) -> "Optional[List[IndexEntry]]":
        if not os.path.exists(self.index_path):
            return None
        entries: List[IndexEntry] = []
        try:
            with open(self.index_path, "r", encoding="utf-8") as handle:
                for line in handle:
                    if line.strip():
                        entries.append(IndexEntry.from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError):
            return None
        return entries

    def _sidecar_is_complete(self, entries: List[IndexEntry]) -> bool:
        """The sidecar covers the records file iff the byte past the
        furthest indexed record is the end of the file (modulo a
        partial trailing line a crash left behind, which a rebuild
        drops)."""
        size = os.path.getsize(self.records_path)
        if not entries:
            return size == 0
        last = max(entries, key=lambda entry: entry.offset)
        with open(self.records_path, "rb") as handle:
            handle.seek(last.offset)
            line = handle.readline()
            if not line.endswith(b"\n"):
                return False
            return handle.tell() == size

    def _rebuild_index(self) -> List[IndexEntry]:
        """Re-derive the index by scanning records.jsonl.  A key met
        twice keeps the later record (a retried error); a
        complete-but-unparsable line is skipped (its offset simply
        stays dead).  Writable opens also repair the disk: the sidecar
        is rewritten atomically and a torn trailing line (crash
        mid-write) is physically truncated away — otherwise the next
        append would glue its record onto the partial line, corrupting
        it.  Read-only opens skip both repairs (the "torn tail" may be
        a concurrent writer's in-flight record)."""
        entries: List[IndexEntry] = []
        truncate_at = None
        with open(self.records_path, "rb") as handle:
            offset = 0
            for line in handle:
                if not line.endswith(b"\n"):
                    truncate_at = offset
                    break  # torn tail from a crash mid-write
                try:
                    record = json.loads(line)
                    entries.append(IndexEntry(
                        spec_hash=record["spec_hash"],
                        seed=record["seed"],
                        name=record.get("name", ""),
                        fingerprint=record.get("fingerprint", ""),
                        offset=offset,
                        error=record_error(record) is not None,
                    ))
                except (ValueError, KeyError, TypeError):
                    pass  # complete but corrupt line: skip it alone
                offset += len(line)
        if self.readonly:
            return entries
        if truncate_at is not None:
            with open(self.records_path, "r+b") as handle:
                handle.truncate(truncate_at)
        tmp_path = self.index_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry.to_dict(), sort_keys=True)
                             + "\n")
        os.replace(tmp_path, self.index_path)
        return entries

    # -- writing -----------------------------------------------------------

    def append(self, record: Dict[str, Any],
               replace: bool = False) -> IndexEntry:
        """Persist one finished scenario's record.

        The record line is written and flushed before its index line,
        so a crash can leave an unindexed record (healed by rebuild)
        but never an index entry pointing at nothing.

        ``replace=True`` supersedes an existing record for the same
        key (append-only on disk; the index moves to the new line) —
        how a retried error record is replaced by a real result.
        """
        if self.readonly:
            raise ConfigurationError(
                f"result store {self.path!r} was opened read-only")
        key = record_key(record)
        if key in self._index and not replace:
            raise ConfigurationError(
                f"store already holds a record for spec_hash={key[0]} "
                f"seed={key[1]}")
        line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        # Binary append so offsets are true byte positions (text-mode
        # tell() returns opaque cookies).
        with open(self.records_path, "ab") as handle:
            handle.seek(0, os.SEEK_END)
            offset = handle.tell()
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        entry = IndexEntry(spec_hash=key[0], seed=key[1],
                           name=record.get("name", ""),
                           fingerprint=record.get("fingerprint", ""),
                           offset=offset,
                           error=record_error(record) is not None)
        with open(self.index_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
        self._admit(entry)
        return entry

    # -- reading -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return tuple(key) in self._index

    def keys(self) -> List[Tuple[str, int]]:
        """(spec_hash, seed) pairs in append order."""
        return list(self._order)

    def has_error(self, key: Tuple[str, int]) -> bool:
        """True when the key's (current) record is a fault-isolation
        error record — the pairs ``retry_errors`` reruns."""
        entry = self._index.get(tuple(key))
        return entry is not None and entry.error

    def errored_keys(self) -> List[Tuple[str, int]]:
        """Keys whose current record is an error record."""
        return [key for key in self._order if self._index[key].error]

    def entries(self) -> List[IndexEntry]:
        """Index entries in append order (no record parsing)."""
        return [self._index[key] for key in self._order]

    def get(self, spec_hash: str, seed: int) -> Dict[str, Any]:
        """Load one record by key (one seek, one line parse)."""
        try:
            entry = self._index[(spec_hash, seed)]
        except KeyError:
            raise KeyError(
                f"no record for spec_hash={spec_hash} seed={seed}") from None
        with open(self.records_path, "rb") as handle:
            handle.seek(entry.offset)
            return json.loads(handle.readline())

    def iter_records(self) -> Iterator[Dict[str, Any]]:
        """Stream every *live* record in file order, one line in
        memory at a time — the aggregation/report path for huge
        sweeps.  Superseded lines (an error record later replaced by a
        retry) and an unindexed/torn tail are skipped."""
        if not os.path.exists(self.records_path):
            return
        live = {entry.offset for entry in self._index.values()}
        with open(self.records_path, "rb") as handle:
            offset = 0
            for line in handle:
                if offset in live:
                    yield json.loads(line)
                offset += len(line)

    def fingerprints(self) -> Dict[Tuple[str, int], str]:
        """key -> result fingerprint, from the sidecar alone."""
        return {key: self._index[key].fingerprint for key in self._order}

    def schema_versions(self) -> Dict[int, int]:
        """schema_version -> record count (streaming scan)."""
        versions: Dict[int, int] = {}
        for record in self.iter_records():
            version = record.get("schema_version", 1)
            versions[version] = versions.get(version, 0) + 1
        return versions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ResultStore {self.path!r} records={len(self)} "
                f"schema=v{RESULT_SCHEMA_VERSION}>")
