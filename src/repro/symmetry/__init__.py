"""Symmetry-aware topology compression (quotient simulation).

Two layers:

* :mod:`repro.symmetry.refine` — structural symmetry detection over a
  declarative :class:`~repro.topology.topo.Topo`: color-refinement
  (1-WL) over node roles, link capacities/delays and pinned
  injection/traffic sites, yielding a :class:`SymmetryMap` of
  automorphism-*candidate* classes (conservative: WL never merges
  nodes an automorphism could not map onto each other... it may only
  fail to split, and every runtime decision re-checks uniformity).
* :mod:`repro.symmetry.quotient` — the runtime quotient layer the
  reallocation engine drives: joint flow/link-direction refinement
  over the cached forwarding walks, a class-level replay of the
  bottleneck-filling kernel that reproduces the concrete float
  arithmetic bit-for-bit, class-level byte accrual, and copy-on-write
  materialization back to concrete flows whenever anything
  symmetry-breaking happens.
"""

from repro.symmetry.refine import (
    SymmetryMap,
    injection_pins,
    symmetry_map_for_spec,
)
from repro.symmetry.quotient import QuotientState

__all__ = [
    "SymmetryMap",
    "QuotientState",
    "injection_pins",
    "symmetry_map_for_spec",
]
