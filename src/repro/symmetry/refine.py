"""Structural symmetry detection: color refinement over a ``Topo``.

:meth:`SymmetryMap.from_topo` partitions the declared nodes (and
links) of a topology into *structural automorphism classes* by
color refinement — the 1-dimensional Weisfeiler-Leman algorithm:

1. every node starts with a *seed color* — its role (host / switch /
   router) plus any *pin* attached to it (see below);
2. every link starts with a seed color of (capacity, delay) plus its
   pin;
3. rounds alternate: a node's new color is its old color joined with
   the multiset of (incident link color, peer color) pairs; a link's
   new color is its old color joined with the unordered pair of
   endpoint colors.  Rounds repeat until neither partition refines.

At the fixpoint the partition is *equitable*: two nodes share a class
only if they see identical color-degree profiles, the necessary
condition for an automorphism to map one onto the other.  1-WL can
fail to *split* nodes that no automorphism relates (regular-graph
corner cases), which is why the runtime quotient layer re-checks
value uniformity on every class before trusting it — the map is a
candidate partition, and every consumer treats it conservatively.

**Pins** keep the partition honest about the experiment, not just the
graph: a node or link that an injection (or explicit traffic
endpoint) targets gets the injection's *shape* — kind, timing,
magnitude, everything except the target names — folded into its seed
color.  Two links degraded by the same SRLG injection at the same
instants keep identical seeds (the shared-risk group stays one
class), while a link singled out by a lone ``link-fail`` is split
from its untouched siblings before the simulation even starts.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.topology.topo import Topo


def _canon(value: Any) -> str:
    return json.dumps(value, sort_keys=True, default=str)


class Pins:
    """Seed-color annotations for injection/traffic target sites."""

    def __init__(self) -> None:
        self.node_pins: Dict[str, List[str]] = {}
        self.link_pins: Dict[Tuple[str, str], List[str]] = {}

    def pin_node(self, name: str, signature: str) -> None:
        self.node_pins.setdefault(name, []).append(signature)

    def pin_link(self, node_a: str, node_b: str, signature: str) -> None:
        key = (node_a, node_b) if node_a <= node_b else (node_b, node_a)
        self.link_pins.setdefault(key, []).append(signature)

    def node_seed(self, name: str) -> Tuple[str, ...]:
        return tuple(sorted(self.node_pins.get(name, ())))

    def link_seed(self, node_a: str, node_b: str) -> Tuple[str, ...]:
        key = (node_a, node_b) if node_a <= node_b else (node_b, node_a)
        return tuple(sorted(self.link_pins.get(key, ())))


#: Injection parameters that name concrete targets.  They are stripped
#: from the pin signature so that symmetric targets of one correlated
#: family (an SRLG, a partition group) keep identical seeds.
_TARGET_FIELDS = ("node_a", "node_b", "node", "group", "pairs")


def injection_pins(injections: Iterable[Any]) -> Pins:
    """Pins for every node/link a list of injections touches.

    The pin signature is the injection's serialized form minus its
    target names — its kind, schedule and magnitude.  Identically
    shaped injections therefore pin their targets identically.
    """
    pins = Pins()
    for injection in injections:
        data = injection.to_dict()
        shape = {k: v for k, v in data.items() if k not in _TARGET_FIELDS}
        signature = _canon(shape)
        if "node_a" in data and "node_b" in data:
            pins.pin_link(data["node_a"], data["node_b"], signature)
        if data.get("node"):
            pins.pin_node(data["node"], signature)
        for name in data.get("group", ()) or ():
            pins.pin_node(name, signature)
        for pair in data.get("pairs", ()) or ():
            for name in pair:
                pins.pin_node(name, signature)
    return pins


class SymmetryMap:
    """The detected class partition of one topology's nodes and links."""

    def __init__(
        self,
        topo_name: str,
        classes: List[List[str]],
        link_classes: List[int],
        link_class_count: int,
        link_names: List[Tuple[str, str]],
    ) -> None:
        self.topo_name = topo_name
        #: Node classes: each a sorted member-name list; classes are
        #: ordered by their smallest member, so ids are canonical.
        self.classes = classes
        self.class_of: Dict[str, int] = {}
        for class_id, members in enumerate(classes):
            for name in members:
                self.class_of[name] = class_id
        #: Per-link class id, aligned with ``topo.link_specs`` (which
        #: is also the creation order of ``Network.links``).
        self.link_classes = link_classes
        self.link_class_count = link_class_count
        self.link_names = link_names

    # -- construction -----------------------------------------------------

    @classmethod
    def from_topo(cls, topo: Topo, pins: Optional[Pins] = None) -> "SymmetryMap":
        pins = pins or Pins()
        names: List[str] = list(topo.host_specs) + list(topo.switch_specs)
        roles: Dict[str, str] = {name: "host" for name in topo.host_specs}
        for spec in topo.switch_specs.values():
            roles[spec.name] = spec.kind

        links = topo.link_specs
        incident: Dict[str, List[int]] = {name: [] for name in names}
        for index, link in enumerate(links):
            incident[link.node_a].append(index)
            incident[link.node_b].append(index)

        # Seed colors, interned to small ints.
        node_color = _intern(
            [(roles[name], pins.node_seed(name)) for name in names])
        link_color = _intern(
            [(link.capacity_bps, link.delay,
              pins.link_seed(link.node_a, link.node_b))
             for link in links])
        node_index = {name: i for i, name in enumerate(names)}

        # Refine to the joint fixpoint.
        while True:
            node_sigs = []
            for name in names:
                profile = sorted(
                    (link_color[e],
                     node_color[node_index[_peer(links[e], name)]])
                    for e in incident[name]
                )
                node_sigs.append((node_color[node_index[name]],
                                  tuple(profile)))
            new_node = _intern(node_sigs)

            link_sigs = []
            for index, link in enumerate(links):
                a = new_node[node_index[link.node_a]]
                b = new_node[node_index[link.node_b]]
                pair = (a, b) if a <= b else (b, a)
                link_sigs.append((link_color[index], pair))
            new_link = _intern(link_sigs)

            stable = (_class_count(new_node) == _class_count(node_color)
                      and _class_count(new_link) == _class_count(link_color))
            node_color, link_color = new_node, new_link
            if stable:
                break

        # Canonicalize: classes ordered by their smallest member name.
        groups: Dict[int, List[str]] = {}
        for name in names:
            groups.setdefault(node_color[node_index[name]], []).append(name)
        classes = sorted((sorted(members) for members in groups.values()),
                         key=lambda members: members[0])

        link_groups: Dict[int, List[int]] = {}
        for index in range(len(links)):
            link_groups.setdefault(link_color[index], []).append(index)
        ordered = sorted(link_groups.values(), key=lambda idxs: idxs[0])
        link_classes = [0] * len(links)
        for class_id, idxs in enumerate(ordered):
            for index in idxs:
                link_classes[index] = class_id

        return cls(
            topo_name=topo.name,
            classes=classes,
            link_classes=link_classes,
            link_class_count=len(ordered),
            link_names=[(link.node_a, link.node_b) for link in links],
        )

    # -- queries ----------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self.class_of)

    @property
    def class_count(self) -> int:
        return len(self.classes)

    def node_compression(self) -> float:
        """Concrete nodes per class (1.0 = no symmetry found)."""
        if not self.classes:
            return 1.0
        return self.node_count / len(self.classes)

    def link_compression(self) -> float:
        if not self.link_classes:
            return 1.0
        return len(self.link_classes) / max(1, self.link_class_count)

    def is_identity(self) -> bool:
        """True when every class is a singleton (no symmetry found)."""
        return len(self.classes) == self.node_count

    def digest(self) -> str:
        """Canonical digest of the whole partition — the cross-process
        determinism pin: same recipe, same digest, any process."""
        payload = {
            "classes": self.classes,
            "link_classes": self.link_classes,
        }
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def describe(self, max_members: int = 6) -> str:
        """Human-readable class table for the CLI."""
        lines = [
            f"topology {self.topo_name!r}: {self.node_count} nodes -> "
            f"{self.class_count} classes "
            f"(compression {self.node_compression():.2f}x), "
            f"{len(self.link_classes)} links -> "
            f"{self.link_class_count} classes "
            f"(compression {self.link_compression():.2f}x)",
            f"digest {self.digest()}",
        ]
        for class_id, members in enumerate(self.classes):
            shown = ", ".join(members[:max_members])
            more = ("" if len(members) <= max_members
                    else f", ... +{len(members) - max_members}")
            lines.append(
                f"  class {class_id:>3} ({len(members):>4} nodes): "
                f"{shown}{more}")
        return "\n".join(lines)


def symmetry_map_for_spec(spec: Any) -> SymmetryMap:
    """The map a scenario's runner would use: the spec's topology with
    every injection target pinned."""
    topo = spec.topology.build()
    return SymmetryMap.from_topo(topo, pins=injection_pins(spec.injections))


# -- helpers --------------------------------------------------------------


def _peer(link, name: str) -> str:
    return link.node_b if link.node_a == name else link.node_a


def _intern(signatures: Sequence[Any]) -> List[int]:
    """Relabel arbitrary hashable signatures as dense ints, first
    occurrence order (deterministic for deterministic input order)."""
    table: Dict[Any, int] = {}
    out: List[int] = []
    for sig in signatures:
        color = table.get(sig)
        if color is None:
            color = len(table)
            table[sig] = color
        out.append(color)
    return out


def _class_count(colors: Sequence[int]) -> int:
    return len(set(colors))
