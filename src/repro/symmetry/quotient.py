"""The runtime quotient layer: class-level solves and accrual.

:class:`QuotientState` rides the incremental reallocation engine
(:class:`~repro.dataplane.realloc.ReallocEngine`).  After every
concrete recompute it re-partitions the *delivered* flows and the link
directions they cross by joint color refinement (1-WL over the
flow/direction incidence structure, seeded with demands, current
rates, delivered bytes, capacities and the topology-level
:class:`~repro.symmetry.refine.SymmetryMap` classes).  At the WL
fixpoint the partition is *equitable*: all members of a flow class
cross the same multiset of direction classes, and every member link
of a direction class is crossed by the same per-class flow counts.

While the partition holds, a reallocation whose only dirt is
class-closed capacity change (every affected direction class uniform
at its new capacity — e.g. an SRLG degrading a whole pod tier) takes
the **fast path**: a class-level connected-component walk plus
:func:`quotient_bottleneck_filling`, a replay of the concrete
bottleneck-filling kernel over class representatives.  Byte accrual
runs per *class* accumulator instead of per flow.

Anything else — a flow starting or stopping, a forwarding-state or
reachability change, a capacity change that splits a class —
**materializes** the class values back onto the concrete flows
(copy-on-write refinement: the quotient dissolves, the existing
concrete engine handles the event exactly as it would without
symmetry, and the next rebuild re-compresses whatever symmetry is
left, with the divergent region falling into singleton classes).

Bit-for-bit contract
--------------------

The fast path reproduces the concrete engine's floating-point results
exactly, not approximately:

* the kernel replay performs the *same sequential additions* on a
  representative link's ``frozen_load`` that the concrete kernel
  performs on every member link — one two-operand ``+= rate`` per
  crossing member flow, in non-decreasing water-level order (runs of
  equal addends commute, so per-event batching is exact); a plain
  ``count * rate`` multiplication would **not** be (``fl(k*v)`` is
  not ``k`` sequential adds);
* class components are solved per component, exactly as the concrete
  engine solves per concrete component — a WL class component is a
  union of isomorphically-behaving concrete components, so one
  representative trajectory equals each member's solo trajectory;
* class accrual applies the identical ``rate * dt / 8.0`` expression
  once per class to an accumulator equal to every member's
  ``delivered_bytes`` (equality of the bases is part of the seed
  colors, so it is checked, not assumed).

Per-hop/port byte counters and flow-table ``last_used_at`` stamps are
*not* maintained on the fast path; the quotient therefore only
activates for protocols without flow-table timeout coupling ("none",
"static") — the runner gates this.  A rebuild also refuses to
activate when some flow crosses two links of the same direction class
(ring-like quotients), where per-event batching is not provably
exact; those scenarios simply run concrete.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.dataplane.solver import EPSILON, quotient_bottleneck_filling
from repro.obs.spans import span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataplane.link import Link, LinkDirection
    from repro.dataplane.realloc import ReallocEngine
    from repro.symmetry.refine import SymmetryMap


class _FlowClass:
    """One class of interchangeable delivered flows."""

    __slots__ = ("flows", "demand", "rate", "delivered", "qlinks")

    def __init__(self, flows, demand, rate, delivered) -> None:
        self.flows = flows          # FluidFlow objects, fid order
        self.demand = demand
        self.rate = rate
        self.delivered = delivered  # the shared delivered_bytes value
        # (dir class index, members-per-representative-link) pairs in
        # path order.
        self.qlinks: List[Tuple[int, int]] = []


class _DirClass:
    """One class of interchangeable link directions."""

    __slots__ = ("dirs", "capacity", "member_fclasses", "load")

    def __init__(self, dirs, capacity) -> None:
        self.dirs = dirs            # LinkDirection members, canonical order
        self.capacity = capacity
        self.member_fclasses: List[int] = []
        self.load = 0.0


class QuotientState:
    """Class partition + class-level rates/bytes, owned by the engine."""

    def __init__(self, engine: "ReallocEngine",
                 symmetry_map: "Optional[SymmetryMap]" = None) -> None:
        self.engine = engine
        self.symmetry_map = symmetry_map
        self.active = False
        self.reason: Optional[str] = "not built yet"
        self.flow_classes: List[_FlowClass] = []
        self.dir_classes: List[_DirClass] = []
        self._dir_class_of: Dict[int, int] = {}  # id(direction) -> class
        # Counters / snapshot for diagnostics.
        self.rebuilds = 0
        self.fast_recomputes = 0
        self.materializations = 0
        self.class_components_solved = 0
        self.class_solves = 0
        self._snapshot: Dict[str, Any] = {}
        # id(Link) -> topology-level link class (creation order aligns
        # Network.links with SymmetryMap.link_classes).
        self._link_class: Dict[int, int] = {}
        if symmetry_map is not None:
            links = engine.network.links
            if len(links) == len(symmetry_map.link_classes):
                self._link_class = {
                    id(link): symmetry_map.link_classes[i]
                    for i, link in enumerate(links)
                }

    # -- partition maintenance --------------------------------------------

    def deactivate(self, reason: str) -> None:
        self.active = False
        self.reason = reason
        self.flow_classes = []
        self.dir_classes = []
        self._dir_class_of = {}

    def rebuild(self, now: float) -> None:
        """Re-refine from the engine's cached walks (after a concrete
        recompute, when every value is concrete and consistent)."""
        with span("quotient.rebuild") as sp:
            self._rebuild(now)
            sp.set(active=self.active,
                   flow_classes=len(self.flow_classes))

    def _rebuild(self, now: float) -> None:
        self.rebuilds += 1
        engine = self.engine
        cache = engine._cache
        dir_flows = engine._dir_flows

        fids = [fid for fid in sorted(cache) if cache[fid].dirs]
        if not fids:
            self.deactivate("no delivered flows")
            return
        dirs = sorted(dir_flows, key=lambda d: d.key())
        fid_pos = {fid: i for i, fid in enumerate(fids)}
        dir_pos = {id(d): j for j, d in enumerate(dirs)}

        node_class = (self.symmetry_map.class_of
                      if self.symmetry_map is not None else {})
        link_class = self._link_class

        fseeds = []
        for fid in fids:
            flow = cache[fid].flow
            fseeds.append((
                flow.demand_bps, flow.rate_bps, flow.delivered_bytes,
                node_class.get(flow.src.name, -1),
                node_class.get(flow.dst.name, -1),
            ))
        dseeds = []
        for d in dirs:
            dseeds.append((
                d.capacity_bps,
                node_class.get(d.src_port.node.name, -1),
                node_class.get(d.dst_port.node.name, -1),
                link_class.get(id(d.link), -1),
            ))
        fcolor = _intern(fseeds)
        dcolor = _intern(dseeds)
        paths = [[dir_pos[id(d)] for d in cache[fid].dirs] for fid in fids]
        members = [sorted(fid_pos[fid] for fid in dir_flows[d]) for d in dirs]

        # Joint refinement to the fixpoint: a flow's color folds in its
        # ordered direction-color sequence; a direction's color folds
        # in the multiset (with counts) of its crossing flows' colors.
        while True:
            new_f = _intern([
                (fcolor[i], tuple(dcolor[j] for j in paths[i]))
                for i in range(len(fids))
            ])
            dsigs = []
            for j in range(len(dirs)):
                counts: Dict[int, int] = {}
                for i in members[j]:
                    color = new_f[i]
                    counts[color] = counts.get(color, 0) + 1
                dsigs.append((dcolor[j], tuple(sorted(counts.items()))))
            new_d = _intern(dsigs)
            stable = (len(set(new_f)) == len(set(fcolor))
                      and len(set(new_d)) == len(set(dcolor)))
            fcolor, dcolor = new_f, new_d
            if stable:
                break

        # Canonical classes: flow classes ordered by smallest fid,
        # direction classes by smallest direction key.
        fgroups = _group(fcolor)
        dgroups = _group(dcolor)

        dir_classes: List[_DirClass] = []
        dir_class_of: Dict[int, int] = {}
        for group in dgroups:
            rep = dirs[group[0]]
            dc = _DirClass([dirs[j] for j in group], rep.capacity_bps)
            for j in group:
                dir_class_of[id(dirs[j])] = len(dir_classes)
            dir_classes.append(dc)

        flow_classes: List[_FlowClass] = []
        fclass_of_pos: Dict[int, int] = {}
        for group in fgroups:
            rep_flow = cache[fids[group[0]]].flow
            fc = _FlowClass(
                [cache[fids[i]].flow for i in group],
                rep_flow.demand_bps, rep_flow.rate_bps,
                rep_flow.delivered_bytes,
            )
            for i in group:
                fclass_of_pos[i] = len(flow_classes)
            flow_classes.append(fc)

        # Per-representative-link crossing counts, path-ordered qlinks,
        # and the multi-crossing guard.
        rep_counts: List[Dict[int, int]] = []
        for dci, dc in enumerate(dir_classes):
            rep_j = dir_pos[id(dc.dirs[0])]
            counts = {}
            for i in members[rep_j]:
                fci = fclass_of_pos[i]
                counts[fci] = counts.get(fci, 0) + 1
            rep_counts.append(counts)
            dc.member_fclasses = sorted(counts)

        for group, fc in zip(fgroups, flow_classes):
            seq = [dir_class_of[id(d)]
                   for d in cache[fids[group[0]]].dirs]
            if len(set(seq)) != len(seq):
                self.deactivate("a flow crosses one direction class twice")
                return
            fci = fclass_of_pos[group[0]]
            fc.qlinks = [(dci, rep_counts[dci].get(fci, 0)) for dci in seq]

        # Equitability double-check (conservative belt and braces): the
        # total (flow class, dir class) incidence must spread evenly
        # over the dir class's member links.
        totals: Dict[Tuple[int, int], int] = {}
        for i, path in enumerate(paths):
            fci = fclass_of_pos[i]
            for j in path:
                key = (fci, dir_class_of[id(dirs[j])])
                totals[key] = totals.get(key, 0) + 1
        for (fci, dci), total in totals.items():
            expected = rep_counts[dci].get(fci, 0) * len(dir_classes[dci].dirs)
            if total != expected:
                self.deactivate("partition is not equitable")
                return

        for dci, dc in enumerate(dir_classes):
            load = 0.0
            for fci, count in rep_counts[dci].items():
                load += flow_classes[fci].rate * count
            dc.load = load

        self.flow_classes = flow_classes
        self.dir_classes = dir_classes
        self._dir_class_of = dir_class_of
        self.active = True
        self.reason = None
        self._snapshot = {
            "flows": len(fids),
            "flow_classes": len(flow_classes),
            "dirs": len(dirs),
            "dir_classes": len(dir_classes),
            "flow_compression": len(fids) / len(flow_classes),
            "dir_compression": len(dirs) / len(dir_classes),
        }

    def materialize(self) -> None:
        """Write class values back onto concrete flows/links and drop
        to concrete mode (no-op when already concrete)."""
        if not self.active:
            return
        self.materializations += 1
        with span("quotient.materialize"):
            self._materialize()

    def _materialize(self) -> None:
        engine = self.engine
        net = engine.network
        for fc in self.flow_classes:
            rate = fc.rate
            delivered = fc.delivered
            for flow in fc.flows:
                flow.rate_bps = rate
                flow.delivered_bytes = delivered
        # Rebuild direction loads, host rates and the accruing set the
        # way a concrete recompute does (fid order), so the values are
        # the exact floats the concrete engine would hold.
        for direction in engine._dir_flows:
            direction.current_load_bps = 0.0
        for host in net.hosts():
            host.rx_rate_bps = 0.0
            host.tx_rate_bps = 0.0
        accruing = []
        for fid in sorted(engine._cache):
            entry = engine._cache[fid]
            if not entry.delivered:
                continue
            flow = entry.flow
            rate = flow.rate_bps
            for direction in entry.dirs:
                direction.current_load_bps += rate
            flow.dst.rx_rate_bps += rate
            flow.src.tx_rate_bps += rate
            if rate > 0:
                accruing.append(flow)
        net._accruing = accruing
        self.active = False
        self.reason = "materialized"

    # -- the fast path -----------------------------------------------------

    def try_fast_cap_update(self, cap_dirty_links: "List[Link]") -> bool:
        """Handle a capacity-only reallocation at class level.

        Returns False (caller materializes and runs concrete) unless
        every affected direction class is capacity-uniform after the
        change — the class-closure check that keeps the partition
        honest when an injection breaks symmetry.
        """
        affected = set()
        for link in cap_dirty_links:
            for direction in (link.forward, link.reverse):
                dci = self._dir_class_of.get(id(direction))
                if dci is not None:
                    affected.add(dci)
        for dci in affected:
            dc = self.dir_classes[dci]
            cap = dc.dirs[0].capacity_bps
            for direction in dc.dirs:
                if direction.capacity_bps != cap:
                    return False
        for dci in affected:
            dc = self.dir_classes[dci]
            dc.capacity = dc.dirs[0].capacity_bps

        # Class-level connected components seeded by the dirty classes
        # (the quotient of the concrete engine's component walk).
        visited = set()
        components: List[List[int]] = []
        for start in sorted(affected):
            if start in visited:
                continue
            visited.add(start)
            comp = set()
            stack = [start]
            while stack:
                dci = stack.pop()
                for fci in self.dir_classes[dci].member_fclasses:
                    if fci in comp:
                        continue
                    comp.add(fci)
                    for other, __ in self.flow_classes[fci].qlinks:
                        if other not in visited:
                            visited.add(other)
                            stack.append(other)
            if comp:
                components.append(sorted(comp))

        with span("quotient.fast_cap", components=len(components)):
            for comp in components:
                self._solve_class_component(comp)

        for dci in visited:
            dc = self.dir_classes[dci]
            load = 0.0
            for fci in dc.member_fclasses:
                fc = self.flow_classes[fci]
                for other, count in fc.qlinks:
                    if other == dci:
                        load += fc.rate * count
            dc.load = load
        self.fast_recomputes += 1
        return True

    def _solve_class_component(self, comp: List[int]) -> None:
        """Build and solve one class component, mirroring the concrete
        engine's instance construction (classes in canonical order,
        direction classes interned in first-appearance path order)."""
        self.class_components_solved += 1
        self.class_solves += len(comp)
        fcs = [self.flow_classes[fci] for fci in comp]
        demands: List[float] = []
        local: Dict[int, int] = {}
        capacities: List[float] = []
        alive: List[int] = []
        link_members: List[List[int]] = []
        flow_links: List[List[Tuple[int, int]]] = []
        for pos, fc in enumerate(fcs):
            demands.append(fc.demand)
            member = fc.demand > EPSILON
            links_here: List[Tuple[int, int]] = []
            for dci, count in fc.qlinks:
                loc = local.get(dci)
                if loc is None:
                    loc = len(capacities)
                    local[dci] = loc
                    capacities.append(self.dir_classes[dci].capacity)
                    alive.append(0)
                    link_members.append([])
                links_here.append((loc, count))
                if member:
                    alive[loc] += count
                    link_members[loc].append(pos)
            flow_links.append(links_here)
        rates = quotient_bottleneck_filling(
            demands, capacities, alive, link_members, flow_links)
        for pos, fc in enumerate(fcs):
            fc.rate = rates[pos]

    # -- class-level byte accrual ------------------------------------------

    def accrue(self, dt: float, now: float) -> None:
        """One accrual step per class — the same ``rate * dt / 8.0``
        float expression every member flow would apply to an identical
        accumulator.  (Per-hop/port counters are not maintained; the
        runner only activates the quotient where nothing reads them.)
        """
        for fc in self.flow_classes:
            rate = fc.rate
            if rate <= 0:
                continue
            fc.delivered += rate * dt / 8.0

    # -- diagnostics --------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        smap = self.symmetry_map
        out: Dict[str, Any] = {
            "active": self.active,
            "reason": self.reason,
            "rebuilds": self.rebuilds,
            "fast_recomputes": self.fast_recomputes,
            "materializations": self.materializations,
            "class_components_solved": self.class_components_solved,
            "class_solves": self.class_solves,
        }
        if smap is not None:
            out["node_classes"] = smap.class_count
            out["node_compression"] = smap.node_compression()
        out.update(self._snapshot)
        return out


def _intern(signatures: Sequence[Any]) -> List[int]:
    table: Dict[Any, int] = {}
    out: List[int] = []
    for sig in signatures:
        color = table.get(sig)
        if color is None:
            color = len(table)
            table[sig] = color
        out.append(color)
    return out


def _group(colors: Sequence[int]) -> List[List[int]]:
    """Positions grouped by color, each group sorted, groups ordered
    by smallest position (canonical for sorted inputs)."""
    groups: Dict[int, List[int]] = {}
    for pos, color in enumerate(colors):
        groups.setdefault(color, []).append(pos)
    return sorted(groups.values(), key=lambda g: g[0])
