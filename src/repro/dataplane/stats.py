"""Network statistics collection.

The demo ends by plotting "the aggregated rate of all flows arriving at
the hosts for each TE case".  :class:`StatsCollector` produces exactly
that: a periodic sampler recording aggregate and per-host receive
rates plus per-link utilisation, exportable as rows or CSV.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.core.events import PRIORITY_STATS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.scheduler import PeriodicTimer
    from repro.core.simulation import Simulation
    from repro.dataplane.network import Network


@dataclass
class Sample:
    """One snapshot of data-plane state."""

    time: float
    aggregate_rx_bps: float
    host_rx_bps: Dict[str, float] = field(default_factory=dict)
    link_utilization: Dict[str, float] = field(default_factory=dict)
    active_flows: int = 0


class StatsCollector:
    """Periodic sampler over a :class:`~repro.dataplane.network.Network`."""

    def __init__(self, network: "Network", interval: float = 0.5,
                 record_links: bool = False):
        if interval <= 0:
            raise ValueError("stats interval must be positive")
        self.network = network
        self.interval = interval
        self.record_links = record_links
        self.samples: List[Sample] = []
        self._timer: Optional["PeriodicTimer"] = None

    def attach(self, sim: "Simulation") -> None:
        """Arm the periodic sampling timer (first sample after one interval)."""
        self._timer = sim.scheduler.periodic(
            self.interval, self.sample_now, priority=PRIORITY_STATS,
            label="stats sample",
        )

    def detach(self) -> None:
        """Stop sampling."""
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    def sample_now(self) -> Sample:
        """Take one sample immediately (also used by the timer)."""
        network = self.network
        now = network.now
        network.accrue(now)
        sample = Sample(
            time=now,
            aggregate_rx_bps=network.aggregate_rx_rate(),
            host_rx_bps={h.name: h.rx_rate_bps for h in network.hosts()},
            active_flows=len(network.active_flows()),
        )
        if self.record_links:
            for link in network.links:
                for direction in (link.forward, link.reverse):
                    key = (
                        f"{direction.src_port.node.name}->"
                        f"{direction.dst_port.node.name}"
                    )
                    sample.link_utilization[key] = direction.utilization()
        self.samples.append(sample)
        return sample

    # -- series accessors ----------------------------------------------------

    def times(self) -> List[float]:
        """Sample timestamps."""
        return [s.time for s in self.samples]

    def aggregate_series(self) -> List[float]:
        """Aggregate host receive rate over time (bps)."""
        return [s.aggregate_rx_bps for s in self.samples]

    def host_series(self, host_name: str) -> List[float]:
        """One host's receive rate over time (bps)."""
        return [s.host_rx_bps.get(host_name, 0.0) for s in self.samples]

    def mean_aggregate_bps(self, after: float = 0.0,
                           before: "float | None" = None) -> float:
        """Average aggregate receive rate over samples in [after, before].

        The demo compares TE schemes by their steady-state aggregate
        rate; ``after`` skips the convergence transient and ``before``
        excludes the tail after traffic has ended.
        """
        values = [
            s.aggregate_rx_bps
            for s in self.samples
            if s.time >= after and (before is None or s.time <= before)
        ]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def peak_aggregate_bps(self) -> float:
        """Highest aggregate receive rate observed."""
        return max((s.aggregate_rx_bps for s in self.samples), default=0.0)

    def to_rows(self) -> List[dict]:
        """Samples as flat dicts (time, aggregate, one column per host)."""
        rows = []
        for sample in self.samples:
            row = {"time": sample.time, "aggregate_rx_bps": sample.aggregate_rx_bps,
                   "active_flows": sample.active_flows}
            for host, rate in sorted(sample.host_rx_bps.items()):
                row[f"rx_{host}"] = rate
            rows.append(row)
        return rows

    def to_csv(self, path: str) -> None:
        """Write the sample rows to a CSV file."""
        rows = self.to_rows()
        if not rows:
            return
        fieldnames = list(rows[0].keys())
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(rows)
