"""Links: capacity, delay, directionality and counters.

A :class:`Link` is the bidirectional cable between two ports.  The
fluid solver and the counters work on :class:`LinkDirection` — each
link exposes two, one per direction — because congestion is inherently
directional (a fat-tree uplink can saturate upstream while idle
downstream).
"""

from __future__ import annotations

import itertools
from typing import Optional, TYPE_CHECKING

from repro.core.errors import TopologyError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataplane.node import Node, Port

GBPS = 1_000_000_000
MBPS = 1_000_000


class LinkDirection:
    """One direction of a link: src port -> dst port."""

    __slots__ = ("link", "src_port", "dst_port", "bytes_carried", "current_load_bps")

    def __init__(self, link: "Link", src_port: "Port", dst_port: "Port"):
        self.link = link
        self.src_port = src_port
        self.dst_port = dst_port
        self.bytes_carried = 0.0
        self.current_load_bps = 0.0

    @property
    def capacity_bps(self) -> float:
        """Capacity of this direction in bits per second."""
        return self.link.capacity_bps

    @property
    def delay(self) -> float:
        """Propagation delay in seconds."""
        return self.link.delay

    @property
    def up(self) -> bool:
        """Whether the parent link is up."""
        return self.link.up

    def utilization(self) -> float:
        """Current load as a fraction of capacity (0..1)."""
        if self.capacity_bps <= 0:
            return 0.0
        return self.current_load_bps / self.capacity_bps

    def key(self) -> tuple:
        """Hashable identity used by the fluid solver."""
        return (self.link.id, self.src_port is self.link.port_a)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LinkDirection {self.src_port.node.name}:{self.src_port.number} -> "
            f"{self.dst_port.node.name}:{self.dst_port.number}>"
        )


class Link:
    """A bidirectional point-to-point link between two node ports."""

    _ids = itertools.count(1)

    def __init__(
        self,
        port_a: "Port",
        port_b: "Port",
        capacity_bps: float = GBPS,
        delay: float = 0.000_05,
    ):
        if capacity_bps <= 0:
            raise TopologyError(f"link capacity must be positive: {capacity_bps}")
        if delay < 0:
            raise TopologyError(f"link delay must be non-negative: {delay}")
        self.id = next(self._ids)
        self.port_a = port_a
        self.port_b = port_b
        self._capacity_bps = float(capacity_bps)
        # The as-built capacity; gray-failure injection degrades
        # capacity_bps and restores it back to this.
        self.nominal_capacity_bps = float(capacity_bps)
        self.delay = float(delay)
        self._up = True
        # Version epochs for the incremental reallocation engine:
        # path_epoch changes when the link's reachability flips (up or
        # down — cached paths crossing or blocked by it are stale),
        # cap_epoch when the capacity the solver sees changes (paths
        # stay valid but rates must be re-solved).
        self.path_epoch = 0
        self.cap_epoch = 0
        self.forward = LinkDirection(self, port_a, port_b)
        self.reverse = LinkDirection(self, port_b, port_a)
        port_a.link = self
        port_b.link = self

    @property
    def up(self) -> bool:
        """Administrative/operational state of the cable."""
        return self._up

    @up.setter
    def up(self, value: bool) -> None:
        if value != self._up:
            self._up = value
            self.path_epoch += 1

    @property
    def capacity_bps(self) -> float:
        """Live capacity in bits per second (both directions)."""
        return self._capacity_bps

    @capacity_bps.setter
    def capacity_bps(self, value: float) -> None:
        value = float(value)
        if value != self._capacity_bps:
            self._capacity_bps = value
            self.cap_epoch += 1

    def direction_from(self, port: "Port") -> LinkDirection:
        """The direction whose source is ``port``."""
        if port is self.port_a:
            return self.forward
        if port is self.port_b:
            return self.reverse
        raise TopologyError(f"port {port!r} is not on link {self.id}")

    def other_port(self, port: "Port") -> "Port":
        """The opposite end of the cable."""
        if port is self.port_a:
            return self.port_b
        if port is self.port_b:
            return self.port_a
        raise TopologyError(f"port {port!r} is not on link {self.id}")

    def endpoints(self) -> tuple:
        """(node_a, node_b) convenience accessor."""
        return (self.port_a.node, self.port_b.node)

    def set_up(self, up: bool) -> None:
        """Administratively raise/fail the link (failure injection)."""
        self.up = up

    def set_capacity(self, capacity_bps: float) -> None:
        """Change the live capacity (gray-failure injection).

        The link stays up but carries less: the max-min solver sees the
        degraded figure on the next reallocation.  ``nominal_capacity_bps``
        is untouched, so the degradation can be undone exactly.
        """
        if capacity_bps <= 0:
            raise TopologyError(f"link capacity must be positive: {capacity_bps}")
        self.capacity_bps = float(capacity_bps)

    @classmethod
    def reset_ids(cls) -> None:
        """Restart link numbering (scenario-run determinism; see
        :func:`repro.dataplane.node.reset_auto_macs`)."""
        cls._ids = itertools.count(1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        a = f"{self.port_a.node.name}:{self.port_a.number}"
        b = f"{self.port_b.node.name}:{self.port_b.number}"
        state = "up" if self.up else "DOWN"
        return f"<Link {self.id} {a}<->{b} {self.capacity_bps / GBPS:.1f}Gbps {state}>"
