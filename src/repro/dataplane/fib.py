"""The Forwarding Information Base of a simulated router.

The FIB is what the Connection Manager programs when an emulated
routing daemon's RIB changes (the "Install routes" arrow of Fig. 1).
Entries map prefixes to one or more next hops; multiple next hops mean
ECMP, resolved per-flow by hashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.errors import DataPlaneError
from repro.netproto.addr import IPv4Address, IPv4Prefix
from repro.netproto.trie import PrefixTrie


@dataclass(frozen=True)
class NextHop:
    """One forwarding choice: egress port and (optional) gateway IP."""

    port: int
    gateway: Optional[IPv4Address] = None

    def __str__(self) -> str:
        via = f" via {self.gateway}" if self.gateway is not None else ""
        return f"port {self.port}{via}"


@dataclass
class FIBEntry:
    """A prefix and its ECMP next-hop set."""

    prefix: IPv4Prefix
    next_hops: Tuple[NextHop, ...]

    def __post_init__(self) -> None:
        if not self.next_hops:
            raise DataPlaneError(f"FIB entry for {self.prefix} has no next hops")


class FIB:
    """Longest-prefix-match forwarding table with ECMP entries."""

    def __init__(self) -> None:
        self._trie = PrefixTrie()
        self.installs = 0
        self.withdrawals = 0
        # Bumped on every mutation; the incremental reallocation engine
        # uses it to spot routers whose forwarding changed.
        self.version = 0

    def install(
        self,
        prefix: "IPv4Prefix | str",
        next_hops: "Sequence[NextHop | Tuple[int, IPv4Address | None]]",
    ) -> FIBEntry:
        """Install (or replace) the entry for ``prefix``.

        ``next_hops`` entries may be :class:`NextHop` or raw
        ``(port, gateway)`` tuples.  Next hops are stored sorted by
        port so ECMP hashing is deterministic regardless of
        announcement order.
        """
        normalized: List[NextHop] = []
        for hop in next_hops:
            if isinstance(hop, NextHop):
                normalized.append(hop)
            else:
                port, gateway = hop
                normalized.append(
                    NextHop(port=port, gateway=IPv4Address(gateway) if gateway is not None else None)
                )
        normalized.sort(key=lambda h: (h.port, int(h.gateway) if h.gateway else 0))
        entry = FIBEntry(prefix=IPv4Prefix(prefix), next_hops=tuple(normalized))
        self._trie.insert(entry.prefix, entry)
        self.installs += 1
        self.version += 1
        return entry

    def withdraw(self, prefix: "IPv4Prefix | str") -> bool:
        """Remove the entry for ``prefix``; True when present."""
        removed = self._trie.delete(IPv4Prefix(prefix))
        if removed:
            self.withdrawals += 1
            self.version += 1
        return removed

    def lookup(self, dst: "IPv4Address | str | int") -> Optional[FIBEntry]:
        """Longest-prefix-match lookup."""
        return self._trie.lookup_value(
            dst if type(dst) is int else int(IPv4Address(dst))
        )

    def get(self, prefix: "IPv4Prefix | str") -> Optional[FIBEntry]:
        """Exact-match lookup."""
        return self._trie.get(IPv4Prefix(prefix))

    def entries(self) -> List[FIBEntry]:
        """Every entry, in (network, length) order."""
        return [entry for __, entry in self._trie.items()]

    def __len__(self) -> int:
        return len(self._trie)

    def clear(self) -> None:
        """Flush the table."""
        self._trie.clear()
        self.version += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FIB entries={len(self)}>"
