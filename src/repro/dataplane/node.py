"""Base node and port models.

Every device in the simulated topology — host, switch, router — is a
:class:`Node` with numbered :class:`Port` objects.  Subclasses override
the two forwarding hooks:

* :meth:`Node.forward_flow` — fluid-path computation: given a flow's
  five-tuple arriving on a port, decide the egress port(s);
* :meth:`Node.handle_packet` — individual packet events (control-plane
  first packets, PACKET_OUT frames).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.core.errors import TopologyError
from repro.netproto.addr import MACAddress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataplane.link import Link
    from repro.dataplane.network import Network
    from repro.netproto.packet import FiveTuple, Packet

_MAC_BASE = 0x0200_0000_0001
_mac_counter = itertools.count(_MAC_BASE)


def next_auto_mac() -> MACAddress:
    """Allocate a locally administered MAC address."""
    return MACAddress(next(_mac_counter))


def reset_auto_macs() -> None:
    """Restart MAC allocation from the base address.

    Scenario runs call this before building their network so a
    scenario's MACs — and anything derived from them — do not depend
    on how many networks were built earlier in the process.
    """
    global _mac_counter
    _mac_counter = itertools.count(_MAC_BASE)


class Port:
    """A numbered attachment point on a node."""

    __slots__ = ("node", "number", "mac", "link", "rx_bytes", "tx_bytes",
                 "rx_packets", "tx_packets")

    def __init__(self, node: "Node", number: int, mac: "MACAddress | None" = None):
        self.node = node
        self.number = number
        self.mac = mac or next_auto_mac()
        self.link: Optional["Link"] = None
        self.rx_bytes = 0.0
        self.tx_bytes = 0.0
        self.rx_packets = 0
        self.tx_packets = 0

    def peer(self) -> Optional["Port"]:
        """The port at the far end of the attached link, if any."""
        if self.link is None:
            return None
        return self.link.other_port(self)

    def connected(self) -> bool:
        """Whether a link is attached."""
        return self.link is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Port {self.node.name}:{self.number}>"


class Node:
    """Base class for every simulated device."""

    kind = "node"

    def __init__(self, name: str):
        if not name:
            raise TopologyError("node needs a non-empty name")
        self.name = name
        self.ports: Dict[int, Port] = {}
        self.network: Optional["Network"] = None
        # Version epoch of this node's forwarding behaviour; bumped on
        # any mutation that could change a forward_flow() outcome.  The
        # incremental reallocation engine compares epochs to decide
        # which cached flow paths to re-walk.
        self._fwd_epoch = 0
        # Administrative state: a down node neither forwards fluid
        # flows nor processes packet events (node failure injection).
        self._up = True
        self._next_port = 1

    @property
    def up(self) -> bool:
        """Administrative state (node failure injection)."""
        return self._up

    @up.setter
    def up(self, value: bool) -> None:
        if value != self._up:
            self._up = value
            self._fwd_epoch += 1

    @property
    def fwd_epoch(self) -> int:
        """Monotonic version of this node's forwarding state.

        Subclasses fold in their table versions (flow table, groups,
        FIB) so any mutation is visible as a change of this number.
        """
        return self._fwd_epoch

    def bump_fwd_epoch(self) -> None:
        """Record an out-of-band forwarding-state change."""
        self._fwd_epoch += 1

    def add_port(self, number: "int | None" = None) -> Port:
        """Create a new port; auto-numbers when ``number`` is None."""
        if number is None:
            while self._next_port in self.ports:
                self._next_port += 1
            number = self._next_port
            self._next_port += 1
        if number in self.ports:
            raise TopologyError(f"{self.name} already has port {number}")
        port = Port(self, number)
        self.ports[number] = port
        return port

    def port(self, number: int) -> Port:
        """Look up a port by number."""
        try:
            return self.ports[number]
        except KeyError:
            raise TopologyError(f"{self.name} has no port {number}") from None

    def neighbors(self) -> List[Tuple[Port, "Node"]]:
        """(local port, peer node) pairs for every connected port."""
        result = []
        for port in sorted(self.ports.values(), key=lambda p: p.number):
            peer = port.peer()
            if peer is not None:
                result.append((port, peer.node))
        return result

    # -- forwarding hooks ----------------------------------------------------

    def forward_flow(self, flow_key: "FiveTuple", in_port: "int | None",
                     macs=None):
        """Decide the egress for a fluid flow.

        ``macs`` is the (src MAC, dst MAC) pair the flow's frames
        carry, supplied by the walk so switches can evaluate L2
        matches.  Returns a :class:`ForwardingDecision`.  Base nodes
        cannot forward anything.
        """
        return ForwardingDecision.drop("base node cannot forward")

    def handle_packet(
        self, in_port: "int | None", packet: "Packet", now: float
    ) -> List[Tuple[int, "Packet"]]:
        """Process an individual packet event.

        Returns (out_port_number, packet) pairs to transmit.  Base
        nodes sink everything.
        """
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} ports={len(self.ports)}>"


class ForwardingDecision:
    """Outcome of one hop of fluid-path computation."""

    __slots__ = ("action", "out_port", "reason", "entry")

    FORWARD = "forward"
    DELIVER = "deliver"
    DROP = "drop"
    MISS = "miss"  # OpenFlow table miss -> PACKET_IN opportunity
    NO_ROUTE = "no_route"  # router FIB had no matching entry

    def __init__(self, action: str, out_port: "int | None" = None,
                 reason: str = "", entry=None):
        self.action = action
        self.out_port = out_port
        self.reason = reason
        self.entry = entry  # matched FlowEntry, for counter accrual

    @classmethod
    def forward(cls, out_port: int, entry=None) -> "ForwardingDecision":
        return cls(cls.FORWARD, out_port=out_port, entry=entry)

    @classmethod
    def deliver(cls) -> "ForwardingDecision":
        return cls(cls.DELIVER)

    @classmethod
    def drop(cls, reason: str) -> "ForwardingDecision":
        return cls(cls.DROP, reason=reason)

    @classmethod
    def miss(cls, reason: str = "table miss") -> "ForwardingDecision":
        return cls(cls.MISS, reason=reason)

    @classmethod
    def no_route(cls, reason: str) -> "ForwardingDecision":
        return cls(cls.NO_ROUTE, reason=reason)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" port={self.out_port}" if self.out_port is not None else ""
        return f"<Decision {self.action}{extra} {self.reason}>"
