"""Max-min fair rate allocation — the fluid traffic model.

This is Horse's speed trick: instead of simulating packets, the data
plane assigns each flow a rate.  We use the classic *progressive
filling* (water-filling) algorithm:

1. all active flows start at rate 0 and grow together;
2. a flow freezes when it reaches its demand, or when some link on its
   path saturates;
3. repeat until every flow is frozen.

The result is the unique max-min fair allocation subject to demands
and directional link capacities.  ``validate_allocation`` checks the
defining properties and is used heavily by the property-based tests:

* feasibility — no link carries more than its capacity;
* demand-boundedness — no flow exceeds its demand;
* bottleneck justification — every flow not meeting its demand crosses
  at least one saturated link where it receives a maximal share.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Tuple

EPSILON = 1e-9


def max_min_allocation(
    flow_paths: Mapping[Hashable, Sequence[Hashable]],
    flow_demands: Mapping[Hashable, float],
    link_capacities: Mapping[Hashable, float],
) -> Dict[Hashable, float]:
    """Compute the max-min fair allocation.

    Parameters
    ----------
    flow_paths:
        flow id -> sequence of link ids the flow crosses.  A flow with
        an empty path is only demand-limited.
    flow_demands:
        flow id -> desired rate (bps).  Must cover every flow.
    link_capacities:
        link id -> capacity (bps).  Must cover every link referenced.

    Returns
    -------
    dict
        flow id -> allocated rate.
    """
    rates: Dict[Hashable, float] = {}
    active: set = set()
    for flow_id in flow_paths:
        demand = flow_demands[flow_id]
        if demand < 0:
            raise ValueError(f"negative demand for flow {flow_id!r}")
        rates[flow_id] = 0.0
        if demand > EPSILON:
            active.add(flow_id)
        # zero-demand flows are born frozen at 0

    residual: Dict[Hashable, float] = {}
    link_members: Dict[Hashable, set] = {}
    for flow_id, path in flow_paths.items():
        for link_id in path:
            if link_id not in residual:
                capacity = link_capacities[link_id]
                if capacity < 0:
                    raise ValueError(f"negative capacity for link {link_id!r}")
                residual[link_id] = float(capacity)
                link_members[link_id] = set()
            if flow_id in active:
                link_members[link_id].add(flow_id)

    # Progressive filling: every round raises all active flows by the
    # largest uniform increment any constraint allows, then freezes the
    # flows that hit their constraint.  Each round freezes at least one
    # flow, so the loop runs at most len(flows) times.
    while active:
        increment = min(flow_demands[f] - rates[f] for f in active)
        limiting_links: List[Hashable] = []
        for link_id, members in link_members.items():
            live = len(members)
            if live == 0:
                continue
            share = residual[link_id] / live
            if share < increment - EPSILON:
                increment = share
                limiting_links = [link_id]
            elif share <= increment + EPSILON:
                limiting_links.append(link_id)
        if increment < 0:
            increment = 0.0

        for flow_id in active:
            rates[flow_id] += increment
        for link_id, members in link_members.items():
            if members:
                residual[link_id] -= increment * len(members)
                if residual[link_id] < 0:
                    residual[link_id] = 0.0

        frozen = set()
        for flow_id in active:
            if rates[flow_id] >= flow_demands[flow_id] - EPSILON:
                rates[flow_id] = flow_demands[flow_id]
                frozen.add(flow_id)
        for link_id in limiting_links:
            saturated = residual[link_id] <= EPSILON * max(
                1.0, link_capacities[link_id]
            )
            if saturated:
                frozen.update(link_members[link_id])
        if not frozen:
            # Zero-increment round with nothing freezing would spin
            # forever; freeze the flows on the tightest link outright.
            if limiting_links:
                for link_id in limiting_links:
                    frozen.update(link_members[link_id])
            else:
                frozen = set(active)
        active -= frozen
        for members in link_members.values():
            members -= frozen

    return rates


def validate_allocation(
    flow_paths: Mapping[Hashable, Sequence[Hashable]],
    flow_demands: Mapping[Hashable, float],
    link_capacities: Mapping[Hashable, float],
    rates: Mapping[Hashable, float],
    tolerance: float = 1e-6,
) -> List[str]:
    """Check the max-min fairness properties; returns violation strings.

    An empty list means the allocation is a valid max-min fair
    assignment.  Tolerance is relative to each constraint's scale.
    """
    problems: List[str] = []

    loads: Dict[Hashable, float] = {}
    for flow_id, path in flow_paths.items():
        rate = rates[flow_id]
        if rate < -tolerance:
            problems.append(f"flow {flow_id!r} has negative rate {rate}")
        if rate > flow_demands[flow_id] * (1 + tolerance) + tolerance:
            problems.append(
                f"flow {flow_id!r} exceeds demand: {rate} > {flow_demands[flow_id]}"
            )
        for link_id in path:
            loads[link_id] = loads.get(link_id, 0.0) + rate

    for link_id, load in loads.items():
        capacity = link_capacities[link_id]
        if load > capacity * (1 + tolerance) + tolerance:
            problems.append(
                f"link {link_id!r} over capacity: load {load} > {capacity}"
            )

    # Bottleneck justification: a flow below its demand must cross a
    # saturated link on which no co-flow gets a strictly larger rate.
    for flow_id, path in flow_paths.items():
        rate = rates[flow_id]
        if rate >= flow_demands[flow_id] * (1 - tolerance) - tolerance:
            continue  # demand met
        justified = False
        for link_id in path:
            capacity = link_capacities[link_id]
            saturated = loads.get(link_id, 0.0) >= capacity * (1 - tolerance) - tolerance
            if not saturated:
                continue
            max_share = max(
                (
                    rates[other]
                    for other, other_path in flow_paths.items()
                    if link_id in set(other_path)
                ),
                default=0.0,
            )
            if rate >= max_share * (1 - tolerance) - tolerance:
                justified = True
                break
        if not justified:
            problems.append(
                f"flow {flow_id!r} below demand ({rate} < {flow_demands[flow_id]}) "
                "with no justifying bottleneck"
            )

    return problems
