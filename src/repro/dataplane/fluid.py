"""Max-min fair rate allocation — the fluid traffic model.

This is Horse's speed trick: instead of simulating packets, the data
plane assigns each flow a rate.  We use the classic *progressive
filling* (water-filling) algorithm:

1. all active flows start at rate 0 and grow together;
2. a flow freezes when it reaches its demand, or when some link on its
   path saturates;
3. repeat until every flow is frozen.

The result is the unique max-min fair allocation subject to demands
and directional link capacities.  ``validate_allocation`` checks the
defining properties and is used heavily by the property-based tests:

* feasibility — no link carries more than its capacity;
* demand-boundedness — no flow exceeds its demand;
* bottleneck justification — every flow not meeting its demand crosses
  at least one saturated link where it receives a maximal share.

Kernel design (PR 2)
--------------------

The solver hot loop runs on **dense integer-indexed arrays**, not on
the id-keyed dicts and sets of the original implementation:

* callers intern flow and link ids to contiguous integers once per
  solve (:func:`max_min_allocation` does this internally for its
  mapping API; the incremental reallocation engine in
  :mod:`repro.dataplane.realloc` builds the arrays directly from its
  path cache);
* per-link state is three flat lists — residual capacity, live member
  count and a precomputed member array — plus a flow→links adjacency
  list, so one filling round is a branchy scan over flat lists instead
  of dict lookups and set algebra;
* freezing a flow decrements the live counters of exactly the links on
  its path (via the adjacency) rather than subtracting a set from every
  link's member set, removing the O(rounds × links × flows) set churn
  of the original progressive filling.

Two kernels share the interned-array representation:

* :func:`progressive_filling` — the original round-based filling with
  its arithmetic preserved operation-for-operation, so
  :func:`max_min_allocation` stays bit-for-bit identical to the
  pre-PR-2 implementation on the existing property-test corpus.  Cost:
  O(rounds × (flows + links)); with distinct demands rounds ≈ flows,
  i.e. quadratic.
* :func:`bottleneck_filling` — **bottleneck-ordered filling**, the
  reallocation engine's kernel.  In progressive filling every active
  flow carries the same water level λ; the next freeze is therefore
  either the smallest remaining demand or the smallest link saturation
  level (capacity − frozen load) / active members.  Two lazy heaps
  order those events, so each flow is frozen once at
  min(demand, bottleneck level) in O(path × log) — O(flows × hops ×
  log) total instead of quadratic.  Same unique max-min allocation,
  different (exact) float arithmetic.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, List, Mapping, Sequence

EPSILON = 1e-9


def progressive_filling(
    demands: Sequence[float],
    residuals: List[float],
    capacities: Sequence[float],
    link_members: Sequence[Sequence[int]],
    flow_links: Sequence[Sequence[int]],
) -> List[float]:
    """Array-kernel progressive filling over interned flow/link indices.

    Parameters
    ----------
    demands:
        per-flow demand, indexed 0..F-1.
    residuals:
        per-link residual capacity, indexed 0..L-1.  **Mutated in
        place** (callers pass a fresh copy).
    capacities:
        per-link original capacity (for the saturation epsilon scale).
    link_members:
        per-link array of member flow indices (only flows with demand
        above ``EPSILON``; duplicates must be pre-deduplicated).
    flow_links:
        per-flow array of link indices on its path (deduplicated).

    Returns
    -------
    list
        per-flow allocated rate.
    """
    num_flows = len(demands)
    num_links = len(residuals)
    rates = [0.0] * num_flows
    # Zero-demand flows are born frozen at 0.
    alive = [demands[i] > EPSILON for i in range(num_flows)]
    active = [i for i in range(num_flows) if alive[i]]
    live = [len(members) for members in link_members]

    # Each round raises all active flows by the largest uniform
    # increment any constraint allows, then freezes the flows that hit
    # their constraint.  Every round freezes at least one flow, so the
    # loop runs at most F times.
    while active:
        increment = min(demands[i] - rates[i] for i in active)
        limiting: List[int] = []
        for link in range(num_links):
            count = live[link]
            if count == 0:
                continue
            share = residuals[link] / count
            if share < increment - EPSILON:
                increment = share
                limiting = [link]
            elif share <= increment + EPSILON:
                limiting.append(link)
        if increment < 0:
            increment = 0.0

        for i in active:
            rates[i] += increment
        for link in range(num_links):
            count = live[link]
            if count:
                residuals[link] -= increment * count
                if residuals[link] < 0:
                    residuals[link] = 0.0

        frozen: List[int] = []
        for i in active:
            if rates[i] >= demands[i] - EPSILON:
                rates[i] = demands[i]
                if alive[i]:
                    alive[i] = False
                    frozen.append(i)
        for link in limiting:
            if residuals[link] <= EPSILON * max(1.0, capacities[link]):
                for i in link_members[link]:
                    if alive[i]:
                        alive[i] = False
                        frozen.append(i)
        if not frozen:
            # Zero-increment round with nothing freezing would spin
            # forever; freeze the flows on the tightest link outright.
            if limiting:
                for link in limiting:
                    for i in link_members[link]:
                        if alive[i]:
                            alive[i] = False
                            frozen.append(i)
            else:
                for i in active:
                    alive[i] = False
                    frozen.append(i)
        for i in frozen:
            for link in flow_links[i]:
                live[link] -= 1
        active = [i for i in active if alive[i]]

    return rates


def bottleneck_filling(
    demands: Sequence[float],
    capacities: Sequence[float],
    link_members: Sequence[Sequence[int]],
    flow_links: Sequence[Sequence[int]],
) -> List[float]:
    """Bottleneck-ordered max-min filling over interned indices.

    Equivalent allocation to :func:`progressive_filling` (max-min is
    unique) but event-driven: the global water level λ jumps straight
    to the next constraint — the smallest unfrozen demand or the
    smallest link saturation level — instead of being raised round by
    round.  Freezing a flow updates only the links on its own path.

    Parameters as for :func:`progressive_filling`, except capacities
    are not mutated (no residual array needed).
    """
    num_flows = len(demands)
    num_links = len(capacities)
    rates = [0.0] * num_flows
    # Zero-demand flows are born frozen at 0.
    frozen = [demands[i] <= EPSILON for i in range(num_flows)]
    alive_count = [len(members) for members in link_members]
    frozen_load = [0.0] * num_links
    current_key = [0.0] * num_links  # latest valid sat-heap key per link

    demand_heap = [(demands[i], i) for i in range(num_flows) if not frozen[i]]
    heapq.heapify(demand_heap)
    sat_heap: List = []

    def push_sat(link: int) -> None:
        count = alive_count[link]
        if count > 0:
            level = (capacities[link] - frozen_load[link]) / count
            current_key[link] = level
            heapq.heappush(sat_heap, (level, link))

    for link in range(num_links):
        push_sat(link)

    level = 0.0  # monotonically non-decreasing water level

    def freeze(i: int, rate: float) -> None:
        frozen[i] = True
        rates[i] = rate
        for link in flow_links[i]:
            frozen_load[link] += rate
            alive_count[link] -= 1
            push_sat(link)

    while True:
        while demand_heap and frozen[demand_heap[0][1]]:
            heapq.heappop(demand_heap)
        while sat_heap and (alive_count[sat_heap[0][1]] == 0
                            or sat_heap[0][0] != current_key[sat_heap[0][1]]):
            heapq.heappop(sat_heap)
        if not demand_heap and not sat_heap:
            break
        # Ties freeze by demand: the flow then gets its full demand.
        if sat_heap and (not demand_heap
                         or sat_heap[0][0] < demand_heap[0][0]):
            sat_level, link = heapq.heappop(sat_heap)
            if sat_level > level:
                level = sat_level  # clamp against float undershoot
            for i in link_members[link]:
                if not frozen[i]:
                    # level can overshoot a member's demand only by
                    # float noise; never exceed the demand.
                    freeze(i, level if level < demands[i] else demands[i])
        else:
            demand, i = heapq.heappop(demand_heap)
            if frozen[i]:
                continue
            if demand > level:
                level = demand
            freeze(i, demand)
    return rates


def max_min_allocation(
    flow_paths: Mapping[Hashable, Sequence[Hashable]],
    flow_demands: Mapping[Hashable, float],
    link_capacities: Mapping[Hashable, float],
) -> Dict[Hashable, float]:
    """Compute the max-min fair allocation.

    Parameters
    ----------
    flow_paths:
        flow id -> sequence of link ids the flow crosses.  A flow with
        an empty path is only demand-limited.
    flow_demands:
        flow id -> desired rate (bps).  Must cover every flow.
    link_capacities:
        link id -> capacity (bps).  Must cover every link referenced.

    Returns
    -------
    dict
        flow id -> allocated rate.
    """
    # Intern flows (mapping order) and links (first-reference order)
    # to dense indices, then run the array kernel.
    flow_ids = list(flow_paths)
    demands: List[float] = []
    for flow_id in flow_ids:
        demand = flow_demands[flow_id]
        if demand < 0:
            raise ValueError(f"negative demand for flow {flow_id!r}")
        demands.append(demand)

    link_index: Dict[Hashable, int] = {}
    residuals: List[float] = []
    capacities: List[float] = []
    link_members: List[List[int]] = []
    flow_links: List[List[int]] = []
    for flow_pos, flow_id in enumerate(flow_ids):
        member = demands[flow_pos] > EPSILON
        links_here: List[int] = []
        seen_here = set()
        for link_id in flow_paths[flow_id]:
            pos = link_index.get(link_id)
            if pos is None:
                capacity = link_capacities[link_id]
                if capacity < 0:
                    raise ValueError(f"negative capacity for link {link_id!r}")
                pos = len(residuals)
                link_index[link_id] = pos
                residuals.append(float(capacity))
                capacities.append(capacity)
                link_members.append([])
            if pos in seen_here:
                continue  # a path crossing a link twice counts once
            seen_here.add(pos)
            links_here.append(pos)
            if member:
                link_members[pos].append(flow_pos)
        flow_links.append(links_here)

    rates = progressive_filling(demands, residuals, capacities,
                                link_members, flow_links)
    return {flow_id: rates[pos] for pos, flow_id in enumerate(flow_ids)}


def validate_allocation(
    flow_paths: Mapping[Hashable, Sequence[Hashable]],
    flow_demands: Mapping[Hashable, float],
    link_capacities: Mapping[Hashable, float],
    rates: Mapping[Hashable, float],
    tolerance: float = 1e-6,
) -> List[str]:
    """Check the max-min fairness properties; returns violation strings.

    An empty list means the allocation is a valid max-min fair
    assignment.  Tolerance is relative to each constraint's scale.
    """
    problems: List[str] = []

    loads: Dict[Hashable, float] = {}
    for flow_id, path in flow_paths.items():
        rate = rates[flow_id]
        if rate < -tolerance:
            problems.append(f"flow {flow_id!r} has negative rate {rate}")
        if rate > flow_demands[flow_id] * (1 + tolerance) + tolerance:
            problems.append(
                f"flow {flow_id!r} exceeds demand: {rate} > {flow_demands[flow_id]}"
            )
        for link_id in path:
            loads[link_id] = loads.get(link_id, 0.0) + rate

    for link_id, load in loads.items():
        capacity = link_capacities[link_id]
        if load > capacity * (1 + tolerance) + tolerance:
            problems.append(
                f"link {link_id!r} over capacity: load {load} > {capacity}"
            )

    # Bottleneck justification: a flow below its demand must cross a
    # saturated link on which no co-flow gets a strictly larger rate.
    for flow_id, path in flow_paths.items():
        rate = rates[flow_id]
        if rate >= flow_demands[flow_id] * (1 - tolerance) - tolerance:
            continue  # demand met
        justified = False
        for link_id in path:
            capacity = link_capacities[link_id]
            saturated = loads.get(link_id, 0.0) >= capacity * (1 - tolerance) - tolerance
            if not saturated:
                continue
            max_share = max(
                (
                    rates[other]
                    for other, other_path in flow_paths.items()
                    if link_id in set(other_path)
                ),
                default=0.0,
            )
            if rate >= max_share * (1 - tolerance) - tolerance:
                justified = True
                break
        if not justified:
            problems.append(
                f"flow {flow_id!r} below demand ({rate} < {flow_demands[flow_id]}) "
                "with no justifying bottleneck"
            )

    return problems
