"""Max-min fair rate allocation — the fluid traffic model.

This is Horse's speed trick: instead of simulating packets, the data
plane assigns each flow a rate.  We use the classic *progressive
filling* (water-filling) algorithm:

1. all active flows start at rate 0 and grow together;
2. a flow freezes when it reaches its demand, or when some link on its
   path saturates;
3. repeat until every flow is frozen.

The result is the unique max-min fair allocation subject to demands
and directional link capacities.  ``validate_allocation`` checks the
defining properties and is used heavily by the property-based tests:

* feasibility — no link carries more than its capacity;
* demand-boundedness — no flow exceeds its demand;
* bottleneck justification — every flow not meeting its demand crosses
  at least one saturated link where it receives a maximal share.

Kernel design (PR 2)
--------------------

The solver hot loop runs on **dense integer-indexed arrays**, not on
the id-keyed dicts and sets of the original implementation:

* callers intern flow and link ids to contiguous integers once per
  solve (:func:`max_min_allocation` does this internally for its
  mapping API; the incremental reallocation engine in
  :mod:`repro.dataplane.realloc` builds the arrays directly from its
  path cache);
* per-link state is three flat lists — residual capacity, live member
  count and a precomputed member array — plus a flow→links adjacency
  list, so one filling round is a branchy scan over flat lists instead
  of dict lookups and set algebra;
* freezing a flow decrements the live counters of exactly the links on
  its path (via the adjacency) rather than subtracting a set from every
  link's member set, removing the O(rounds × links × flows) set churn
  of the original progressive filling.

The kernels themselves live in :mod:`repro.dataplane.solver` (the
unified facade: ``reference``, ``heap`` and ``arrays`` behind one
registry); this module keeps the mapping-level API
(:func:`max_min_allocation`, :func:`validate_allocation`) and, for one
release, deprecation shims for the old direct kernel imports
(``fluid.progressive_filling`` / ``fluid.bottleneck_filling``).
"""

from __future__ import annotations

import warnings
from typing import Dict, Hashable, List, Mapping, Sequence

from repro.dataplane.solver import EPSILON
from repro.dataplane.solver import progressive_filling as _progressive_filling

__all__ = ["EPSILON", "max_min_allocation", "validate_allocation"]

_DEPRECATED_KERNELS = ("progressive_filling", "bottleneck_filling")


def __getattr__(name: str):
    # PEP 562 shims: the kernels moved to repro.dataplane.solver.
    if name in _DEPRECATED_KERNELS:
        warnings.warn(
            f"repro.dataplane.fluid.{name} is deprecated; import it from "
            "repro.dataplane.solver (or use solver.get_kernel())",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.dataplane import solver

        return getattr(solver, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def max_min_allocation(
    flow_paths: Mapping[Hashable, Sequence[Hashable]],
    flow_demands: Mapping[Hashable, float],
    link_capacities: Mapping[Hashable, float],
) -> Dict[Hashable, float]:
    """Compute the max-min fair allocation.

    Parameters
    ----------
    flow_paths:
        flow id -> sequence of link ids the flow crosses.  A flow with
        an empty path is only demand-limited.
    flow_demands:
        flow id -> desired rate (bps).  Must cover every flow.
    link_capacities:
        link id -> capacity (bps).  Must cover every link referenced.

    Returns
    -------
    dict
        flow id -> allocated rate.
    """
    # Intern flows (mapping order) and links (first-reference order)
    # to dense indices, then run the array kernel.
    flow_ids = list(flow_paths)
    demands: List[float] = []
    for flow_id in flow_ids:
        demand = flow_demands[flow_id]
        if demand < 0:
            raise ValueError(f"negative demand for flow {flow_id!r}")
        demands.append(demand)

    link_index: Dict[Hashable, int] = {}
    residuals: List[float] = []
    capacities: List[float] = []
    link_members: List[List[int]] = []
    flow_links: List[List[int]] = []
    for flow_pos, flow_id in enumerate(flow_ids):
        member = demands[flow_pos] > EPSILON
        links_here: List[int] = []
        seen_here = set()
        for link_id in flow_paths[flow_id]:
            pos = link_index.get(link_id)
            if pos is None:
                capacity = link_capacities[link_id]
                if capacity < 0:
                    raise ValueError(f"negative capacity for link {link_id!r}")
                pos = len(residuals)
                link_index[link_id] = pos
                residuals.append(float(capacity))
                capacities.append(capacity)
                link_members.append([])
            if pos in seen_here:
                continue  # a path crossing a link twice counts once
            seen_here.add(pos)
            links_here.append(pos)
            if member:
                link_members[pos].append(flow_pos)
        flow_links.append(links_here)

    rates = _progressive_filling(demands, residuals, capacities,
                                 link_members, flow_links)
    return {flow_id: rates[pos] for pos, flow_id in enumerate(flow_ids)}


def validate_allocation(
    flow_paths: Mapping[Hashable, Sequence[Hashable]],
    flow_demands: Mapping[Hashable, float],
    link_capacities: Mapping[Hashable, float],
    rates: Mapping[Hashable, float],
    tolerance: float = 1e-6,
) -> List[str]:
    """Check the max-min fairness properties; returns violation strings.

    An empty list means the allocation is a valid max-min fair
    assignment.  Tolerance is relative to each constraint's scale.
    """
    problems: List[str] = []

    loads: Dict[Hashable, float] = {}
    for flow_id, path in flow_paths.items():
        rate = rates[flow_id]
        if rate < -tolerance:
            problems.append(f"flow {flow_id!r} has negative rate {rate}")
        if rate > flow_demands[flow_id] * (1 + tolerance) + tolerance:
            problems.append(
                f"flow {flow_id!r} exceeds demand: {rate} > {flow_demands[flow_id]}"
            )
        for link_id in path:
            loads[link_id] = loads.get(link_id, 0.0) + rate

    for link_id, load in loads.items():
        capacity = link_capacities[link_id]
        if load > capacity * (1 + tolerance) + tolerance:
            problems.append(
                f"link {link_id!r} over capacity: load {load} > {capacity}"
            )

    # Bottleneck justification: a flow below its demand must cross a
    # saturated link on which no co-flow gets a strictly larger rate.
    for flow_id, path in flow_paths.items():
        rate = rates[flow_id]
        if rate >= flow_demands[flow_id] * (1 - tolerance) - tolerance:
            continue  # demand met
        justified = False
        for link_id in path:
            capacity = link_capacities[link_id]
            saturated = loads.get(link_id, 0.0) >= capacity * (1 - tolerance) - tolerance
            if not saturated:
                continue
            max_share = max(
                (
                    rates[other]
                    for other, other_path in flow_paths.items()
                    if link_id in set(other_path)
                ),
                default=0.0,
            )
            if rate >= max_share * (1 - tolerance) - tolerance:
                justified = True
                break
        if not justified:
            problems.append(
                f"flow {flow_id!r} below demand ({rate} < {flow_demands[flow_id]}) "
                "with no justifying bottleneck"
            )

    return problems
