"""The OpenFlow flow table of a simulated switch.

Entries are matched by descending priority (first installed wins a
priority tie, like hardware TCAM ordering).  Counters accrue from the
fluid model — byte counts integrate flow rates over time, and packet
counts are synthesised assuming MTU-sized packets — so STATS_REPLY
messages carry live numbers for Hedera to poll.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro.openflow.actions import Action, ActionOutput, output_ports
from repro.openflow.constants import FlowModCommand, OFP_FLOW_PERMANENT
from repro.openflow.match import Match

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netproto.packet import FiveTuple, Packet

MTU_BYTES = 1500


@dataclass
class FlowEntry:
    """One flow-table entry with live counters."""

    match: Match
    actions: List[Action] = field(default_factory=list)
    priority: int = 0x8000
    cookie: int = 0
    idle_timeout: int = OFP_FLOW_PERMANENT
    hard_timeout: int = OFP_FLOW_PERMANENT
    installed_at: float = 0.0
    byte_count: float = 0.0
    last_used_at: float = 0.0
    _seq: int = field(default_factory=itertools.count().__next__)

    @property
    def packet_count(self) -> int:
        """Synthesised packet counter (fluid bytes / MTU)."""
        return int(self.byte_count // MTU_BYTES)

    def output_ports(self) -> List[int]:
        """Ports this entry outputs to (empty = drop)."""
        return output_ports(self.actions)

    def sort_key(self) -> tuple:
        """Descending priority, then install order."""
        return (-self.priority, self._seq)

    def duration(self, now: float) -> float:
        """Seconds since installation."""
        return max(0.0, now - self.installed_at)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        acts = ",".join(str(a) for a in self.actions) or "drop"
        return f"<FlowEntry prio={self.priority} {self.match} -> {acts}>"


class FlowTable:
    """A priority-ordered flow table."""

    def __init__(self) -> None:
        self._entries: List[FlowEntry] = []
        self.lookups = 0
        self.misses = 0
        # Bumped on every mutation; the network uses it to decide when
        # a previously-missed flow deserves a fresh PACKET_IN.
        self.version = 0

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> List[FlowEntry]:
        """Entries in match order (highest priority first)."""
        return list(self._entries)

    def add(self, entry: FlowEntry, replace: bool = True) -> FlowEntry:
        """Insert an entry; replaces a same-(match, priority) entry.

        Replacement keeps OpenFlow ADD semantics: counters reset.
        """
        if replace:
            self._entries = [
                existing
                for existing in self._entries
                if not (
                    existing.priority == entry.priority
                    and existing.match.is_strict_equal(entry.match)
                )
            ]
        self._entries.append(entry)
        self._entries.sort(key=FlowEntry.sort_key)
        self.version += 1
        return entry

    def delete(self, match: Match, strict: bool = False,
               priority: "int | None" = None, out_port: "int | None" = None) -> List[FlowEntry]:
        """Remove entries per OpenFlow DELETE semantics.

        Non-strict: remove every entry whose match is subsumed by
        ``match``.  Strict: remove the single entry with identical
        match and priority.  ``out_port`` further filters to entries
        that output there.  Returns the removed entries.
        """
        removed: List[FlowEntry] = []
        kept: List[FlowEntry] = []
        for entry in self._entries:
            if strict:
                hit = (
                    entry.match.is_strict_equal(match)
                    and (priority is None or entry.priority == priority)
                )
            else:
                hit = match.subsumes(entry.match)
            if hit and out_port is not None and out_port not in entry.output_ports():
                hit = False
            (removed if hit else kept).append(entry)
        self._entries = kept
        if removed:
            self.version += 1
        return removed

    def match_five_tuple(
        self,
        flow_key: "FiveTuple",
        in_port: "int | None" = None,
        dl_src=None,
        dl_dst=None,
    ) -> Optional[FlowEntry]:
        """Highest-priority entry matching a five-tuple, or None."""
        self.lookups += 1
        for entry in self._entries:
            if entry.match.matches_five_tuple(
                flow_key, in_port=in_port, dl_src=dl_src, dl_dst=dl_dst
            ):
                return entry
        self.misses += 1
        return None

    def match_packet(self, packet: "Packet", in_port: "int | None" = None) -> Optional[FlowEntry]:
        """Highest-priority entry matching a packet, or None."""
        self.lookups += 1
        for entry in self._entries:
            if entry.match.matches_packet(packet, in_port=in_port):
                return entry
        self.misses += 1
        return None

    def expire(self, now: float) -> List[FlowEntry]:
        """Remove entries past their idle/hard timeout; returns them.

        The switch agent turns these into FLOW_REMOVED messages when
        the controller asked for notification.
        """
        expired: List[FlowEntry] = []
        kept: List[FlowEntry] = []
        for entry in self._entries:
            hard_hit = (
                entry.hard_timeout != OFP_FLOW_PERMANENT
                and now - entry.installed_at >= entry.hard_timeout
            )
            idle_reference = max(entry.last_used_at, entry.installed_at)
            idle_hit = (
                entry.idle_timeout != OFP_FLOW_PERMANENT
                and now - idle_reference >= entry.idle_timeout
            )
            (expired if hard_hit or idle_hit else kept).append(entry)
        self._entries = kept
        if expired:
            self.version += 1
        return expired

    def clear(self) -> None:
        """Flush the table."""
        self._entries.clear()
        self.version += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FlowTable entries={len(self._entries)} lookups={self.lookups}>"
