"""The simulated network: topology container and fluid-traffic engine.

:class:`Network` owns the nodes and links, tracks the set of active
fluid flows, walks the forwarding state to compute each flow's path,
and drives the max-min fair solver whenever something changes:

* a flow starts or ends;
* the control plane reprograms forwarding state (FIB installs and
  OpenFlow flow-mods invalidate routing through the Connection
  Manager).

Recomputations triggered within the same instant are coalesced into a
single event, so a burst of BGP route installs or a path-wide set of
flow-mods costs one reallocation, not one per message.

Reallocations themselves are *incremental* (PR 2): the
:class:`~repro.dataplane.realloc.ReallocEngine` caches walked paths,
re-walks only flows invalidated by epoch-tracked forwarding-state
changes, and re-solves only the affected connected components of the
flow/link sharing graph.

The network also forwards *individual* packets (first packets of
missing flows, PACKET_OUT frames) hop by hop with per-link delays.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, Iterable, List, Optional, TYPE_CHECKING

import networkx as nx

from repro.core.errors import DataPlaneError, TopologyError
from repro.dataplane.flow import FluidFlow, PathResult, PathStatus
from repro.dataplane.host import Host
from repro.dataplane.realloc import ReallocEngine
from repro.dataplane.link import Link, LinkDirection
from repro.dataplane.node import ForwardingDecision, Node
from repro.dataplane.router import Router
from repro.dataplane.switch import Switch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.simulation import Simulation
    from repro.netproto.packet import Packet

MAX_HOPS = 128


class Network:
    """Topology + fluid flows + packet events."""

    def __init__(self, name: str = "net"):
        self.name = name
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        self.flows: List[FluidFlow] = []
        self.sim: Optional["Simulation"] = None
        self.recomputations = 0
        self.packets_forwarded = 0
        self._recompute_pending = False
        self._last_accrual = 0.0
        self._last_recompute = -float("inf")
        self._routing_epoch = 0
        # Bumped on any topology mutation (new node/link); the realloc
        # engine answers with one full recompute, since cached walk
        # outcomes can depend on state no per-entity epoch witnesses.
        self.topo_epoch = 0
        # The incremental reallocation engine (PR 2) and its master
        # switch; False forces every recompute down the full path
        # (benchmarks A/B against it, and it is the paranoia fallback).
        self.realloc = ReallocEngine(self)
        self.incremental_realloc = True
        # Flows currently accruing bytes (active + delivered + rate>0),
        # maintained by the realloc engine so accrue() does not scan
        # every flow ever created.
        self._accruing: List[FluidFlow] = []
        # The rate timeline: piecewise-constant (dt, now) segments
        # recorded since the last flush.  All pending segments share
        # one rate vector — any code that changes a rate flushes first
        # — so recompute storms integrate in one batch instead of
        # visiting every flow per event.
        self._pending_accrual: List[tuple] = []
        # Vectorized accrual pass over the accruing set, rebuilt by the
        # realloc engine when the arrays kernel is live (None otherwise
        # — the scalar loop runs instead).
        self._accrual_batch = None
        # Minimum spacing between reallocations, in simulated seconds.
        # 0 recomputes at every distinct change instant (exact).  A few
        # milliseconds models FIB/TCAM programming latency and lets a
        # convergence burst of route installs coalesce — large BGP
        # experiments run several times faster with ~5 ms here.
        self.recompute_min_interval = 0.0
        # Hooks fired after every reallocation; stats and tests use them.
        self.on_reallocation: List[Callable[[float], None]] = []

    # -- topology construction ------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Register a node; names must be unique."""
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        node.network = self
        self.nodes[node.name] = node
        self.topo_epoch += 1
        return node

    def add_host(self, name: str, ip, gateway=None) -> Host:
        """Create and register a host."""
        host = Host(name, ip, gateway)
        self.add_node(host)
        return host

    def add_switch(self, name: str, dpid: "int | None" = None) -> Switch:
        """Create and register an OpenFlow switch."""
        switch = Switch(name, dpid=dpid)
        self.add_node(switch)
        return switch

    def add_router(self, name: str, router_id=None) -> Router:
        """Create and register a router."""
        router = Router(name, router_id=router_id)
        self.add_node(router)
        return router

    def get_node(self, name: str) -> Node:
        """Look a node up by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node {name!r}") from None

    def add_link(
        self,
        node_a: "Node | str",
        node_b: "Node | str",
        capacity_bps: float = 1_000_000_000,
        delay: float = 0.000_05,
        port_a: "int | None" = None,
        port_b: "int | None" = None,
    ) -> Link:
        """Connect two nodes with a new link, allocating ports as needed."""
        a = self.get_node(node_a) if isinstance(node_a, str) else node_a
        b = self.get_node(node_b) if isinstance(node_b, str) else node_b
        pa = self._pick_port(a, port_a)
        pb = self._pick_port(b, port_b)
        link = Link(pa, pb, capacity_bps=capacity_bps, delay=delay)
        self.links.append(link)
        self.topo_epoch += 1
        return link

    @staticmethod
    def _pick_port(node: Node, requested: "int | None"):
        if requested is not None:
            port = node.ports.get(requested) or node.add_port(requested)
        else:
            port = next(
                (p for p in sorted(node.ports.values(), key=lambda p: p.number)
                 if not p.connected()),
                None,
            ) or node.add_port()
        if port.connected():
            raise TopologyError(f"port {node.name}:{port.number} already wired")
        return port

    def hosts(self) -> List[Host]:
        """All hosts, sorted by name."""
        return sorted(
            (n for n in self.nodes.values() if isinstance(n, Host)),
            key=lambda n: n.name,
        )

    def switches(self) -> List[Switch]:
        """All switches, sorted by name."""
        return sorted(
            (n for n in self.nodes.values() if isinstance(n, Switch)),
            key=lambda n: n.name,
        )

    def routers(self) -> List[Router]:
        """All routers, sorted by name."""
        return sorted(
            (n for n in self.nodes.values() if isinstance(n, Router)),
            key=lambda n: n.name,
        )

    def host_by_ip(self, ip) -> Optional[Host]:
        """Find the host owning an IP, if any."""
        for host in self.hosts():
            if host.ip == ip:
                return host
        return None

    def graph(self) -> "nx.Graph":
        """A networkx view of the topology (for controllers and tests)."""
        graph = nx.Graph()
        for name in self.nodes:
            graph.add_node(name, kind=self.nodes[name].kind)
        for link in self.links:
            a, b = link.endpoints()
            graph.add_edge(
                a.name,
                b.name,
                capacity=link.capacity_bps,
                delay=link.delay,
                port_a=link.port_a.number,
                port_b=link.port_b.number,
                up=link.up,
            )
        return graph

    # -- simulation binding ----------------------------------------------------

    def bind(self, sim: "Simulation") -> None:
        """Attach this network to a simulation (called by the sim)."""
        self.sim = sim
        self._last_accrual = sim.clock.now
        self.incremental_realloc = getattr(
            sim.config, "incremental_realloc", True)
        self.realloc.kernel = getattr(sim.config, "kernel", "auto")

    def _require_sim(self) -> "Simulation":
        if self.sim is None:
            raise DataPlaneError("network is not attached to a simulation")
        return self.sim

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._require_sim().clock.now

    # -- flows -------------------------------------------------------------------

    def add_flow(self, flow: FluidFlow) -> FluidFlow:
        """Register a flow and schedule its start/end events."""
        sim = self._require_sim()
        self.flows.append(flow)
        sim.scheduler.at(flow.start_time, lambda: self.start_flow(flow),
                         label=f"start {flow.name}")
        if flow.end_time is not None:
            sim.scheduler.at(flow.end_time, lambda: self.stop_flow(flow),
                             label=f"stop {flow.name}")
        return flow

    def start_flow(self, flow: FluidFlow) -> None:
        """Activate a flow now and trigger reallocation."""
        if flow.active:
            return
        flow.active = True
        self.realloc.mark_flow_dirty(flow)
        self.invalidate_routing()

    def stop_flow(self, flow: FluidFlow) -> None:
        """Deactivate a flow now and trigger reallocation."""
        if not flow.active:
            return
        self.accrue(self.now)
        flow.active = False
        flow.rate_bps = 0.0
        state = self.realloc._arrays
        if state is not None:
            # Keep the SoA mirror's rate in lockstep so a later flush
            # of deferred segments adds exactly 0 for this flow.
            state.zero_rate(flow.id)
        self.realloc.mark_flow_dirty(flow)
        self.invalidate_routing()

    def active_flows(self) -> List[FluidFlow]:
        """Flows currently sending."""
        return [flow for flow in self.flows if flow.active]

    # -- path computation ----------------------------------------------------------

    def compute_path(self, flow: FluidFlow) -> PathResult:
        """Walk the forwarding state from src to dst for one flow."""
        node: Node = flow.src
        in_port: Optional[int] = None
        hops: List[LinkDirection] = []
        entries = []
        macs = (flow.src.mac, flow.dst.mac)
        for __ in range(MAX_HOPS):
            if not node.up:
                return PathResult(
                    PathStatus.DROPPED, hops=hops, entries=entries,
                    miss_node=node.name, detail="node down",
                )
            decision = node.forward_flow(flow.key, in_port, macs=macs)
            if decision.action == ForwardingDecision.DELIVER:
                return PathResult(PathStatus.DELIVERED, hops=hops, entries=entries)
            if decision.action == ForwardingDecision.MISS:
                return PathResult(
                    PathStatus.MISS, hops=hops, entries=entries,
                    miss_node=node.name, detail=decision.reason,
                )
            if decision.action == ForwardingDecision.NO_ROUTE:
                return PathResult(
                    PathStatus.NO_ROUTE, hops=hops, entries=entries,
                    miss_node=node.name, detail=decision.reason,
                )
            if decision.action == ForwardingDecision.DROP:
                return PathResult(
                    PathStatus.DROPPED, hops=hops, entries=entries,
                    miss_node=node.name, detail=decision.reason,
                )
            # FORWARD
            port = node.port(decision.out_port)
            if not port.connected():
                return PathResult(
                    PathStatus.DROPPED, hops=hops, entries=entries,
                    miss_node=node.name,
                    detail=f"port {port.number} not connected",
                )
            if not port.link.up:
                return PathResult(
                    PathStatus.DROPPED, hops=hops, entries=entries,
                    miss_node=node.name, detail="link down",
                    blocking_link=port.link,
                )
            direction = port.link.direction_from(port)
            hops.append(direction)
            if decision.entry is not None and isinstance(node, Switch):
                entries.append((node, decision.entry))
            peer = port.peer()
            node = peer.node
            in_port = peer.number
        return PathResult(PathStatus.LOOP, hops=hops, entries=entries,
                          detail=f"no delivery within {MAX_HOPS} hops")

    # -- failure injection -------------------------------------------------------------

    def set_node_up(self, name: str, up: bool) -> None:
        """Administratively fail/recover a whole node and reroute.

        A down node stops forwarding fluid flows and sinks packet
        events.  Callers that also want the node's cables and control
        sessions cut should use
        :meth:`repro.api.experiment.Experiment.fail_node`, which layers
        those on top of this switch-level flag.
        """
        node = self.get_node(name)
        if node.up == up:
            return
        node.up = up
        self.invalidate_routing()

    # -- reallocation ------------------------------------------------------------------

    def invalidate_routing(self) -> None:
        """Request a reallocation; requests inside the same instant (or
        the same ``recompute_min_interval`` window) coalesce."""
        sim = self._require_sim()
        if self._recompute_pending:
            return
        self._recompute_pending = True
        when = sim.clock.now
        if self.recompute_min_interval > 0:
            when = max(when, self._last_recompute + self.recompute_min_interval)
        sim.scheduler.at(when, self._recompute, label="recompute")

    def _recompute(self) -> None:
        self._recompute_pending = False
        self.recompute(self.now)

    def recompute(self, now: float) -> None:
        """Recompute paths and rates at ``now``.

        The heavy lifting lives in :class:`ReallocEngine`: only flows
        whose cached path crosses a changed link/node (or that started
        or stopped) are re-walked, and only the affected connected
        components of the flow/link sharing graph are re-solved.  With
        ``incremental_realloc`` off, every recompute walks and solves
        everything — same code path, everything marked dirty.
        """
        # Record the accrual segment but defer the counter work: the
        # realloc engine flushes the timeline only when rates can
        # actually change (see ReallocEngine._recompute), so recompute
        # storms with no dirt skip the per-flow byte loop entirely.
        self._defer_accrue(now)
        self.recomputations += 1
        self._routing_epoch += 1
        self._last_recompute = now
        self.realloc.recompute(now, full=not self.incremental_realloc)
        for hook in self.on_reallocation:
            hook(now)

    def _report_miss(self, flow: FluidFlow, result: PathResult, now: float) -> None:
        """Raise a PACKET_IN for a table miss, at most once per (flow,
        switch, table version).

        A real switch punts every missing packet; in the fluid model
        the flow re-misses on each recompute, so a guard is needed —
        but it must reset when the switch's table changes, otherwise a
        flow that missed before the relevant entry existed could never
        trigger the controller again (e.g. the reverse direction of a
        learning-switch conversation).
        """
        switch = self.nodes.get(result.miss_node)
        if not isinstance(switch, Switch) or switch.agent is None:
            return
        version_seen = flow.reported_misses.get(switch.name)
        if version_seen is not None and version_seen >= switch.table.version:
            return
        flow.reported_misses[switch.name] = switch.table.version
        if result.hops:
            in_port = result.hops[-1].dst_port.number
        else:
            in_port = 0
        switch.agent.packet_in(in_port, flow.first_packet(), now)

    def _all_directions(self) -> Iterable[LinkDirection]:
        for link in self.links:
            yield link.forward
            yield link.reverse

    # -- byte accounting -----------------------------------------------------------------

    def accrue(self, now: float) -> None:
        """Integrate flow rates into byte counters up to ``now``.

        Public contract unchanged: counters are current on return.
        Internally the work is a rate-timeline append plus a flush;
        :meth:`recompute` appends without flushing and lets the realloc
        engine flush only when rates can change.
        """
        self._defer_accrue(now)
        self._flush_accrual()

    def _defer_accrue(self, now: float) -> None:
        """Record one piecewise-constant rate segment ending at ``now``.

        Quotient mode never defers: class-level accrual is already one
        batched pass, and the quotient owns the counter bookkeeping.
        """
        dt = now - self._last_accrual
        if dt <= 0:
            return
        self._last_accrual = now
        quotient = self.realloc.quotient
        if quotient is not None and quotient.active:
            # Quotient mode: one accrual per flow class.  Per-hop/port
            # byte counters are not maintained here — the runner only
            # activates the quotient for protocols that never read them.
            quotient.accrue(dt, now)
            return
        self._pending_accrual.append((dt, now))

    def _flush_accrual(self) -> None:
        """Replay the pending rate-timeline segments into the counters.

        Every pending segment was recorded against the current rate
        vector (rate changes always flush first), so the vectorized
        pass may collapse them; the scalar pass replays them one by
        one to keep per-entry ``last_used_at`` stamps exact.
        """
        if not self._pending_accrual:
            return
        segments = self._pending_accrual
        self._pending_accrual = []
        batch = self._accrual_batch
        if batch is not None:
            for dt, __ in segments:
                batch.flush(dt)
            return
        for dt, seg_now in segments:
            for flow in self._accruing:
                if (not flow.active or flow.path is None
                        or not flow.path.delivered):
                    continue
                if flow.rate_bps <= 0:
                    continue
                transferred = flow.rate_bps * dt / 8.0  # bits -> bytes
                flow.delivered_bytes += transferred
                flow.src.tx_bytes += transferred
                flow.dst.rx_bytes += transferred
                for hop in flow.path.hops:
                    hop.bytes_carried += transferred
                    hop.src_port.tx_bytes += transferred
                    hop.dst_port.rx_bytes += transferred
                for __, entry in flow.path.entries:
                    entry.byte_count += transferred
                    entry.last_used_at = seg_now

    def finalize_accounting(self) -> None:
        """Materialize any active quotient state back onto concrete
        flows and flush deferred byte accrual (no-ops otherwise).
        Callers reading per-flow bytes after a run (the scenario
        runner, result extraction) go through this.
        """
        self._flush_accrual()
        quotient = self.realloc.quotient
        if quotient is not None:
            quotient.materialize()

    def aggregate_rx_rate(self) -> float:
        """Total rate arriving at all hosts (bps) — the demo's metric."""
        return sum(host.rx_rate_bps for host in self.hosts())

    # -- packet events --------------------------------------------------------------------

    def inject_packet(self, node: "Node | str", in_port: "int | None",
                      packet: "Packet") -> None:
        """Run a packet through a node's pipeline, then across links."""
        origin = self.get_node(node) if isinstance(node, str) else node
        if not origin.up:
            return  # a failed node sinks everything
        outputs = origin.handle_packet(in_port, packet, self.now)
        self.transmit(origin, outputs)

    def transmit(self, origin: "Node", outputs) -> None:
        """Send (port, packet) pairs out of a node across its links.

        Also the entry point for PACKET_OUT: the switch agent resolves
        the action list to concrete ports and hands the result here.
        """
        sim = self._require_sim()
        many = len(outputs) > 1
        for port_no, out_packet in outputs:
            port = origin.ports.get(port_no)
            if port is None or not port.connected() or not port.link.up:
                continue
            to_send = copy.deepcopy(out_packet) if many else out_packet
            port.tx_packets += 1
            port.tx_bytes += to_send.size
            peer = port.peer()
            self.packets_forwarded += 1
            sim.scheduler.after(
                port.link.delay,
                lambda p=peer, pkt=to_send: self._packet_arrives(p, pkt),
                label="packet hop",
            )

    def _packet_arrives(self, peer_port, packet: "Packet") -> None:
        peer_port.rx_packets += 1
        peer_port.rx_bytes += packet.size
        self.inject_packet(peer_port.node, peer_port.number, packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Network {self.name!r} nodes={len(self.nodes)} links={len(self.links)} "
            f"flows={len(self.flows)}>"
        )
