"""Unified max-min solver facade: one registry, three kernels.

PRs 2 and 8 accreted three divergent solver entry points —
``fluid.progressive_filling`` (the round-based reference arithmetic),
``fluid.bottleneck_filling`` (the event-ordered heap kernel) and
``symmetry.quotient.quotient_bottleneck_filling`` (the class-level
replay).  This module is now the home of all of them, behind a single
:class:`MaxMinSolver` protocol and a kernel registry:

* ``"reference"`` — :func:`progressive_filling` wrapped to the common
  signature.  The pre-PR-2 arithmetic, preserved operation for
  operation; quadratic with distinct demands.  Benchmarks use it as
  the baseline (it was previously spelled ``"legacy"``).
* ``"heap"``      — :func:`bottleneck_filling`, bottleneck-ordered
  filling with lazy heaps (previously spelled ``"bottleneck"``).
* ``"arrays"``    — :func:`repro.dataplane.arrays.bottleneck_filling_arrays`,
  the vectorized numpy batch kernel (PR 10).  Registered lazily and
  only when numpy imports; bit-for-bit equal to ``"heap"`` (it replays
  the same float arithmetic in saturation-level batches).

Selection is a ``kernel`` knob on :class:`repro.core.config.SimulationConfig`
(and thus ``sim_params`` in scenario specs).  The default ``"auto"``
resolves to ``"arrays"`` when numpy state is live and no symmetry
quotient is attached, else ``"heap"``: the quotient fast path replays
*heap* arithmetic per class, so quotient runs stay on the kernel they
are pinned against.

The old ``fluid.progressive_filling`` / ``fluid.bottleneck_filling``
imports keep working for one release via ``DeprecationWarning`` shims;
``quotient_bottleneck_filling`` is re-exported unchanged from
:mod:`repro.symmetry.quotient`.
"""

from __future__ import annotations

import heapq
from typing import (
    Callable,
    Dict,
    List,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

EPSILON = 1e-9

#: The ``kernel`` values a SimulationConfig / spec may carry.
KERNEL_CHOICES = ("auto", "reference", "heap", "arrays")

#: Pre-PR-10 spellings of ``ReallocEngine.kernel``, accepted for one
#: release so external callers poking the attribute keep working.
_KERNEL_ALIASES = {"legacy": "reference", "bottleneck": "heap"}


# ---------------------------------------------------------------------------
# The kernels (moved verbatim from repro.dataplane.fluid, PR 2 arithmetic)
# ---------------------------------------------------------------------------


def progressive_filling(
    demands: Sequence[float],
    residuals: List[float],
    capacities: Sequence[float],
    link_members: Sequence[Sequence[int]],
    flow_links: Sequence[Sequence[int]],
) -> List[float]:
    """Array-kernel progressive filling over interned flow/link indices.

    Parameters
    ----------
    demands:
        per-flow demand, indexed 0..F-1.
    residuals:
        per-link residual capacity, indexed 0..L-1.  **Mutated in
        place** (callers pass a fresh copy).
    capacities:
        per-link original capacity (for the saturation epsilon scale).
    link_members:
        per-link array of member flow indices (only flows with demand
        above ``EPSILON``; duplicates must be pre-deduplicated).
    flow_links:
        per-flow array of link indices on its path (deduplicated).

    Returns
    -------
    list
        per-flow allocated rate.
    """
    num_flows = len(demands)
    num_links = len(residuals)
    rates = [0.0] * num_flows
    # Zero-demand flows are born frozen at 0.
    alive = [demands[i] > EPSILON for i in range(num_flows)]
    active = [i for i in range(num_flows) if alive[i]]
    live = [len(members) for members in link_members]

    # Each round raises all active flows by the largest uniform
    # increment any constraint allows, then freezes the flows that hit
    # their constraint.  Every round freezes at least one flow, so the
    # loop runs at most F times.
    while active:
        increment = min(demands[i] - rates[i] for i in active)
        limiting: List[int] = []
        for link in range(num_links):
            count = live[link]
            if count == 0:
                continue
            share = residuals[link] / count
            if share < increment - EPSILON:
                increment = share
                limiting = [link]
            elif share <= increment + EPSILON:
                limiting.append(link)
        if increment < 0:
            increment = 0.0

        for i in active:
            rates[i] += increment
        for link in range(num_links):
            count = live[link]
            if count:
                residuals[link] -= increment * count
                if residuals[link] < 0:
                    residuals[link] = 0.0

        frozen: List[int] = []
        for i in active:
            if rates[i] >= demands[i] - EPSILON:
                rates[i] = demands[i]
                if alive[i]:
                    alive[i] = False
                    frozen.append(i)
        for link in limiting:
            if residuals[link] <= EPSILON * max(1.0, capacities[link]):
                for i in link_members[link]:
                    if alive[i]:
                        alive[i] = False
                        frozen.append(i)
        if not frozen:
            # Zero-increment round with nothing freezing would spin
            # forever; freeze the flows on the tightest link outright.
            if limiting:
                for link in limiting:
                    for i in link_members[link]:
                        if alive[i]:
                            alive[i] = False
                            frozen.append(i)
            else:
                for i in active:
                    alive[i] = False
                    frozen.append(i)
        for i in frozen:
            for link in flow_links[i]:
                live[link] -= 1
        active = [i for i in active if alive[i]]

    return rates


def bottleneck_filling(
    demands: Sequence[float],
    capacities: Sequence[float],
    link_members: Sequence[Sequence[int]],
    flow_links: Sequence[Sequence[int]],
) -> List[float]:
    """Bottleneck-ordered max-min filling over interned indices.

    Equivalent allocation to :func:`progressive_filling` (max-min is
    unique) but event-driven: the global water level λ jumps straight
    to the next constraint — the smallest unfrozen demand or the
    smallest link saturation level — instead of being raised round by
    round.  Freezing a flow updates only the links on its own path.

    Parameters as for :func:`progressive_filling`, except capacities
    are not mutated (no residual array needed).
    """
    num_flows = len(demands)
    num_links = len(capacities)
    rates = [0.0] * num_flows
    # Zero-demand flows are born frozen at 0.
    frozen = [demands[i] <= EPSILON for i in range(num_flows)]
    alive_count = [len(members) for members in link_members]
    frozen_load = [0.0] * num_links
    current_key = [0.0] * num_links  # latest valid sat-heap key per link

    demand_heap = [(demands[i], i) for i in range(num_flows) if not frozen[i]]
    heapq.heapify(demand_heap)
    sat_heap: List = []

    def push_sat(link: int) -> None:
        count = alive_count[link]
        if count > 0:
            level = (capacities[link] - frozen_load[link]) / count
            current_key[link] = level
            heapq.heappush(sat_heap, (level, link))

    for link in range(num_links):
        push_sat(link)

    level = 0.0  # monotonically non-decreasing water level

    def freeze(i: int, rate: float) -> None:
        frozen[i] = True
        rates[i] = rate
        for link in flow_links[i]:
            frozen_load[link] += rate
            alive_count[link] -= 1
            push_sat(link)

    while True:
        while demand_heap and frozen[demand_heap[0][1]]:
            heapq.heappop(demand_heap)
        while sat_heap and (alive_count[sat_heap[0][1]] == 0
                            or sat_heap[0][0] != current_key[sat_heap[0][1]]):
            heapq.heappop(sat_heap)
        if not demand_heap and not sat_heap:
            break
        # Ties freeze by demand: the flow then gets its full demand.
        if sat_heap and (not demand_heap
                         or sat_heap[0][0] < demand_heap[0][0]):
            sat_level, link = heapq.heappop(sat_heap)
            if sat_level > level:
                level = sat_level  # clamp against float undershoot
            for i in link_members[link]:
                if not frozen[i]:
                    # level can overshoot a member's demand only by
                    # float noise; never exceed the demand.
                    freeze(i, level if level < demands[i] else demands[i])
        else:
            demand, i = heapq.heappop(demand_heap)
            if frozen[i]:
                continue
            if demand > level:
                level = demand
            freeze(i, demand)
    return rates


def quotient_bottleneck_filling(
    demands: Sequence[float],
    capacities: Sequence[float],
    alive_counts: Sequence[int],
    link_members: Sequence[Sequence[int]],
    flow_links: Sequence[Sequence[Tuple[int, int]]],
) -> List[float]:
    """Class-level replay of :func:`bottleneck_filling`.

    Indices are *classes*: ``demands[i]`` is the (uniform) demand of
    flow class ``i``; ``capacities[j]`` the (uniform) capacity of a
    representative member link of direction class ``j``;
    ``alive_counts[j]`` how many member *flows* cross that
    representative link; ``link_members[j]`` the flow classes crossing
    it; ``flow_links[i]`` the ``(class, crossing_count)`` pairs of
    flow class ``i``'s path.  Freezing a class replays
    ``crossing_count`` sequential additions per representative link —
    the exact float trajectory every concrete member link follows.
    """
    num_flows = len(demands)
    num_links = len(capacities)
    rates = [0.0] * num_flows
    frozen = [demands[i] <= EPSILON for i in range(num_flows)]
    alive_count = list(alive_counts)
    frozen_load = [0.0] * num_links
    current_key = [0.0] * num_links

    demand_heap = [(demands[i], i) for i in range(num_flows) if not frozen[i]]
    heapq.heapify(demand_heap)
    sat_heap: List = []

    def push_sat(link: int) -> None:
        count = alive_count[link]
        if count > 0:
            level = (capacities[link] - frozen_load[link]) / count
            current_key[link] = level
            heapq.heappush(sat_heap, (level, link))

    for link in range(num_links):
        push_sat(link)

    level = 0.0

    def freeze(i: int, rate: float) -> None:
        frozen[i] = True
        rates[i] = rate
        for link, mult in flow_links[i]:
            load = frozen_load[link]
            for __ in range(mult):
                load += rate
            frozen_load[link] = load
            alive_count[link] -= mult
            push_sat(link)

    while True:
        while demand_heap and frozen[demand_heap[0][1]]:
            heapq.heappop(demand_heap)
        while sat_heap and (alive_count[sat_heap[0][1]] == 0
                            or sat_heap[0][0] != current_key[sat_heap[0][1]]):
            heapq.heappop(sat_heap)
        if not demand_heap and not sat_heap:
            break
        if sat_heap and (not demand_heap
                         or sat_heap[0][0] < demand_heap[0][0]):
            sat_level, link = heapq.heappop(sat_heap)
            if sat_level > level:
                level = sat_level
            for i in link_members[link]:
                if not frozen[i]:
                    freeze(i, level if level < demands[i] else demands[i])
        else:
            demand, i = heapq.heappop(demand_heap)
            if frozen[i]:
                continue
            if demand > level:
                level = demand
            freeze(i, demand)
    return rates


# ---------------------------------------------------------------------------
# The facade: MaxMinSolver protocol + kernel registry
# ---------------------------------------------------------------------------


@runtime_checkable
class MaxMinSolver(Protocol):
    """A registered max-min kernel: one interned-instance solve call.

    The common signature mirrors :func:`bottleneck_filling` —
    capacities are never mutated, residual bookkeeping (if any) is the
    kernel's own business.
    """

    name: str

    def solve(
        self,
        demands: Sequence[float],
        capacities: Sequence[float],
        link_members: Sequence[Sequence[int]],
        flow_links: Sequence[Sequence[int]],
    ) -> Sequence[float]:
        ...  # pragma: no cover - protocol


class _FunctionSolver:
    """Adapts a plain kernel function to :class:`MaxMinSolver`."""

    __slots__ = ("name", "_fn")

    def __init__(self, name: str, fn: Callable) -> None:
        self.name = name
        self._fn = fn

    def solve(self, demands, capacities, link_members, flow_links):
        return self._fn(demands, capacities, link_members, flow_links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MaxMinSolver {self.name!r}>"


def _reference_solve(demands, capacities, link_members, flow_links):
    # progressive_filling mutates its residual array; the facade keeps
    # the common no-mutation signature by copying here.
    return progressive_filling(demands, list(capacities), capacities,
                               link_members, flow_links)


_REGISTRY: Dict[str, MaxMinSolver] = {}


def register_kernel(solver: MaxMinSolver, *, replace: bool = False) -> None:
    """Register a solver under its ``name`` (tests plug in probes)."""
    if not replace and solver.name in _REGISTRY:
        raise ValueError(f"kernel {solver.name!r} is already registered")
    _REGISTRY[solver.name] = solver


register_kernel(_FunctionSolver("reference", _reference_solve))
register_kernel(_FunctionSolver("heap", bottleneck_filling))


def numpy_available() -> bool:
    """Whether the ``"arrays"`` kernel can run in this interpreter."""
    from repro.dataplane import arrays

    return arrays.HAVE_NUMPY


def _ensure_arrays_registered() -> bool:
    if "arrays" in _REGISTRY:
        return True
    from repro.dataplane import arrays

    if not arrays.HAVE_NUMPY:
        return False
    register_kernel(
        _FunctionSolver("arrays", arrays.bottleneck_filling_arrays))
    return True


def available_kernels() -> Tuple[str, ...]:
    """Registered kernel names, selectable order (registry + arrays)."""
    _ensure_arrays_registered()
    return tuple(sorted(_REGISTRY))


def canonical_kernel(name: str) -> str:
    """Map a kernel spelling to its canonical name, validating it.

    Accepts the pre-PR-10 engine spellings (``legacy``/``bottleneck``)
    plus everything in :data:`KERNEL_CHOICES`; raises ``ValueError``
    naming the valid set otherwise.
    """
    name = _KERNEL_ALIASES.get(name, name)
    if name not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {name!r}; valid kernels: "
            f"{', '.join(KERNEL_CHOICES)}")
    return name


def resolve_kernel(requested: str, *, quotient: bool = False) -> str:
    """Resolve a (canonical or aliased) kernel request to a concrete one.

    ``"auto"`` picks ``"arrays"`` when numpy state is live and no
    symmetry quotient rides the engine (the quotient fast path replays
    *heap* arithmetic, so symmetric runs stay pinned to it), else
    ``"heap"``.  An explicit ``"arrays"`` request without numpy falls
    back to ``"heap"`` — the two are bit-for-bit equal, so the
    degradation is silent by design.
    """
    requested = canonical_kernel(requested)
    if requested == "auto":
        if not quotient and _ensure_arrays_registered():
            return "arrays"
        return "heap"
    if requested == "arrays" and not _ensure_arrays_registered():
        return "heap"
    return requested


def get_kernel(name: str) -> MaxMinSolver:
    """Look a registered solver up by concrete (resolved) name."""
    if name == "arrays":
        _ensure_arrays_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no kernel {name!r} registered; available: "
            f"{', '.join(sorted(_REGISTRY))}") from None


__all__ = [
    "EPSILON",
    "KERNEL_CHOICES",
    "MaxMinSolver",
    "available_kernels",
    "bottleneck_filling",
    "canonical_kernel",
    "get_kernel",
    "numpy_available",
    "progressive_filling",
    "quotient_bottleneck_filling",
    "register_kernel",
    "resolve_kernel",
]
