"""Incremental fluid reallocation: dirty-flow tracking + scoped solves.

Pre-PR-2, every reallocation re-walked the forwarding path of *every*
active flow and re-solved the *global* max-min allocation — O(flows ×
hops) + O(rounds × links × flows) per flow start/stop, route install or
failure injection.  This module makes the hot path incremental:

**Path caching with epoch invalidation.**  Every node exposes a
monotonic ``fwd_epoch`` (folding in flow-table, group-table and FIB
versions plus up/down state) and every link a ``path_epoch`` /
``cap_epoch`` pair.  The engine caches each flow's walked path together
with a reverse dependency index (node → flows whose walk visited it,
link → flows whose walk crossed or was blocked by it).  A recompute
scans the epochs — O(nodes + links), far below O(flows × hops) — and
re-walks only the flows reachable from a changed entity, plus flows
that explicitly started or stopped.

**Scoped re-solve.**  Rates only change inside the connected
component(s) of the flow/link sharing graph that a dirty flow or a
capacity change touches.  The engine seeds a BFS with the old and new
link directions of every re-walked flow (and the directions of
capacity-changed links), partitions the reachable flows into
components, and re-solves each component independently with a dense array kernel from
the :mod:`repro.dataplane.solver` registry (``reference``/``heap``/
``arrays``, selected by the engine's ``kernel`` knob), splicing
unchanged rates through untouched components.

A *full* recompute runs through the same partition-and-solve code with
every active flow marked dirty, so the incremental path is bit-for-bit
identical to a from-scratch recompute: a component's solve is a pure
function of the component instance (flows in id order, directions in
first-appearance order), and any change to an instance dirties it.

Topology growth (new nodes/links) bumps ``Network.topo_epoch`` and
falls back to one full recompute — cables appearing mid-run invalidate
walk outcomes that no per-entity epoch witnesses (a previously
unconnected port, say).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, TYPE_CHECKING

from repro.dataplane import arrays as _arrays
from repro.dataplane import solver as _solver
from repro.dataplane.flow import FluidFlow, PathStatus
from repro.dataplane.solver import EPSILON
from repro.obs.spans import span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataplane.link import LinkDirection
    from repro.dataplane.network import Network


class _CachedWalk:
    """One flow's cached walk result and its dependency footprint."""

    __slots__ = ("flow", "result", "node_deps", "link_deps", "dirs")

    def __init__(self, flow: FluidFlow, result) -> None:
        self.flow = flow
        self.result = result
        node_deps = {flow.src.name}
        for hop in result.hops:
            node_deps.add(hop.dst_port.node.name)
        link_deps = {hop.link.id for hop in result.hops}
        if result.blocking_link is not None:
            link_deps.add(result.blocking_link.id)
        self.node_deps = node_deps
        self.link_deps = link_deps
        # Directions only matter for delivered flows: undelivered flows
        # carry no rate and constrain nobody.
        self.dirs: List["LinkDirection"] = (
            list(result.hops) if result.delivered else []
        )

    @property
    def delivered(self) -> bool:
        return self.result.delivered


class ReallocEngine:
    """Owns the dirty-set logic and the scoped max-min re-solve."""

    def __init__(self, network: "Network") -> None:
        self.network = network
        # Requested solver kernel (see repro.dataplane.solver):
        # "auto" resolves per recompute — "arrays" when numpy is
        # importable and no quotient layer is attached, else "heap".
        # Legacy names ("bottleneck", "legacy") canonicalize on set.
        self._kernel = "auto"
        self._solve_kernel = "heap"  # resolved per recompute
        # The persisted struct-of-arrays mirror (created lazily the
        # first time a recompute resolves to the arrays kernel).
        self._arrays: Optional[_arrays.ArraysState] = None
        self._cache: Dict[int, _CachedWalk] = {}
        self._node_flows: Dict[str, Set[int]] = {}
        self._link_flows: Dict[int, Set[int]] = {}
        self._dir_flows: Dict["LinkDirection", Set[int]] = {}
        self._seen_node_epoch: Dict[str, int] = {}
        self._seen_link_path_epoch: Dict[int, int] = {}
        self._seen_link_cap_epoch: Dict[int, int] = {}
        self._seen_topo_epoch: Optional[int] = None
        # Flows whose activation changed since the last recompute.
        self._pending: Dict[int, FluidFlow] = {}
        # Optional symmetry quotient layer (see repro.symmetry.quotient).
        self.quotient = None
        # Counters for benchmarks and tests.
        self.full_recomputes = 0
        self.incremental_recomputes = 0
        self.flows_walked = 0
        self.components_solved = 0
        self.flows_solved = 0

    @property
    def kernel(self) -> str:
        """The requested solver kernel (canonical name)."""
        return self._kernel

    @kernel.setter
    def kernel(self, name: str) -> None:
        self._kernel = _solver.canonical_kernel(name)

    def effective_kernel(self) -> str:
        """The kernel the next recompute will actually run."""
        return _solver.resolve_kernel(
            self._kernel, quotient=self.quotient is not None)

    def enable_quotient(self, symmetry_map=None) -> None:
        """Attach the symmetry quotient layer (SimulationConfig.symmetry)."""
        from repro.symmetry.quotient import QuotientState

        self.quotient = QuotientState(self, symmetry_map)

    # -- mutation notifications -------------------------------------------

    def mark_flow_dirty(self, flow: FluidFlow) -> None:
        """A flow started or stopped; re-walk it next recompute."""
        self._pending[flow.id] = flow

    def forget(self) -> None:
        """Drop all cached state (next recompute is full)."""
        if self.quotient is not None:
            self.quotient.materialize()
        self._cache.clear()
        self._node_flows.clear()
        self._link_flows.clear()
        self._dir_flows.clear()
        self._seen_topo_epoch = None
        self._pending.clear()
        if self._arrays is not None:
            self._arrays.reset()
        self.network._accrual_batch = None

    # -- the recompute ----------------------------------------------------

    def recompute(self, now: float, full: bool = False) -> None:
        """Refresh paths and rates; called by :meth:`Network.recompute`."""
        with span("realloc.recompute", full=full) as sp:
            self._recompute(now, full)
            sp.set(flows_walked=self.flows_walked,
                   components_solved=self.components_solved)

    def _recompute(self, now: float, full: bool) -> None:
        net = self.network
        if self._seen_topo_epoch != net.topo_epoch:
            self._seen_topo_epoch = net.topo_epoch
            full = True

        # Any path below here may change flow rates, so deferred byte
        # accrual must be brought current first (the pending segments
        # were integrated against the *old* rate vector).  The one
        # exception — an incremental recompute that finds no dirt at
        # all — returns early below, leaving accrual deferred: that is
        # the rate-epoch short-circuit for recompute storms.
        if full or self.quotient is not None:
            net._flush_accrual()

        cap_dirty_links: List = []
        if full:
            if self.quotient is not None:
                self.quotient.materialize()
            self.full_recomputes += 1
            self._cache.clear()
            self._node_flows.clear()
            self._link_flows.clear()
            self._dir_flows.clear()
            if self._arrays is not None:
                self._arrays.reset()
            dirty = {flow.id: flow for flow in net.flows if flow.active}
            for name, node in net.nodes.items():
                self._seen_node_epoch[name] = node.fwd_epoch
            for link in net.links:
                self._seen_link_path_epoch[link.id] = link.path_epoch
                self._seen_link_cap_epoch[link.id] = link.cap_epoch
        else:
            self.incremental_recomputes += 1
            dirty, cap_dirty_links = self._scan_epochs()
            quotient = self.quotient
            if quotient is not None and quotient.active:
                # Class-closed capacity-only dirt is handled entirely at
                # class level; anything else materializes first so the
                # concrete path below sees consistent concrete state.
                if not dirty and quotient.try_fast_cap_update(cap_dirty_links):
                    self._pending.clear()
                    return
                quotient.materialize()
            elif quotient is None and not dirty and not cap_dirty_links:
                # Nothing changed: no walk, no solve, no rate change —
                # and no accrual flush needed (rates are unchanged, so
                # pending segments stay mergeable).
                self._pending.clear()
                return
            net._flush_accrual()
        self._pending.clear()

        # Resolve the solver kernel for this recompute and keep the
        # struct-of-arrays mirror in lockstep with the cache (created
        # lazily, bulk-interning surviving walks; dropped when the
        # kernel switches away so it cannot go stale).
        effective = self.effective_kernel()
        if effective == "arrays":
            state = self._arrays
            if state is None:
                state = self._arrays = _arrays.ArraysState()
                for fid, cached in self._cache.items():
                    if cached.delivered:
                        state.intern_flow(fid, cached.flow, cached.dirs)
        else:
            state = None
            if self._arrays is not None:
                self._arrays = None
                net._accrual_batch = None
        self._solve_kernel = effective

        # Re-walk dirty flows (in id order, for deterministic PACKET_IN
        # ordering), collecting the seed directions of the re-solve.
        seed_dirs: List["LinkDirection"] = []
        seen_seeds: Set[int] = set()  # id() of LinkDirection

        def seed(direction: "LinkDirection") -> None:
            if id(direction) not in seen_seeds:
                seen_seeds.add(id(direction))
                seed_dirs.append(direction)

        for fid in sorted(dirty):
            flow = dirty[fid]
            old = self._cache.pop(fid, None)
            if old is not None:
                self._unindex(fid, old)
                for direction in old.dirs:
                    seed(direction)
            if not flow.active:
                if state is not None:
                    state.drop_flow(fid)
                continue  # stopped: rate already zeroed by the network
            result = net.compute_path(flow)
            flow.path = result
            self.flows_walked += 1
            if result.status is PathStatus.MISS:
                net._report_miss(flow, result, now)
            entry = _CachedWalk(flow, result)
            self._cache[fid] = entry
            self._index(fid, entry)
            if entry.delivered:
                if state is not None:
                    state.intern_flow(fid, flow, entry.dirs)
                for direction in entry.dirs:
                    seed(direction)
            else:
                if state is not None:
                    state.drop_flow(fid)
                flow.rate_bps = 0.0
        for link in cap_dirty_links:
            seed(link.forward)
            seed(link.reverse)
            if state is not None:
                state.patch_capacity(link)

        # Partition the affected region into connected components of
        # the flow/direction sharing graph and re-solve each.  With the
        # SoA mirror live, the BFS itself runs vectorized on the
        # interned incidence (same graph: only delivered flows carry
        # directions, and those are exactly the interned rows).
        if full:
            seed_dirs = list(self._dir_flows)
            seen_seeds = {id(d) for d in seed_dirs}
        seed_dirs.sort(key=lambda d: d.key())
        comp_loads = []  # arrays path: (dirs, loads) per component
        if state is not None:
            arr_components, touched_dirs = state.components(seed_dirs)
            if arr_components:
                with span("realloc.solve",
                          components=len(arr_components),
                          kernel=effective) as sp:
                    for fids, slots in arr_components:
                        comp_loads.append(
                            self._solve_component_arrays(fids, slots))
                    sp.set(flows=sum(len(f) for f, __ in arr_components))
        else:
            visited: Set[int] = set()  # id() of LinkDirection
            touched_dirs = []
            components: List[List[int]] = []
            for start in seed_dirs:
                if id(start) in visited:
                    continue
                visited.add(id(start))
                touched_dirs.append(start)
                comp: Set[int] = set()
                stack = [start]
                while stack:
                    direction = stack.pop()
                    for fid in self._dir_flows.get(direction, ()):
                        if fid in comp:
                            continue
                        comp.add(fid)
                        for other in self._cache[fid].dirs:
                            if id(other) not in visited:
                                visited.add(id(other))
                                touched_dirs.append(other)
                                stack.append(other)
                if comp:
                    components.append(sorted(comp))
            if components:
                with span("realloc.solve", components=len(components),
                          kernel=effective) as sp:
                    for comp in components:
                        self._solve_component(comp)
                    sp.set(flows=sum(len(c) for c in components))

        # Refresh link loads: only directions in the affected region
        # can have changed.  (A full recompute zeroes everything: stale
        # loads may linger on directions no current flow crosses.)
        if full:
            for direction in net._all_directions():
                direction.current_load_bps = 0.0
        else:
            for direction in touched_dirs:
                direction.current_load_bps = 0.0
        if state is not None:
            # A direction belongs to exactly one component, and the
            # vectorized per-component sums replay the scalar loop's
            # add order, so assignment is exact.
            for dirs, loads in comp_loads:
                for direction, load in zip(dirs, loads.tolist()):
                    direction.current_load_bps = load
        else:
            for comp in components:
                for fid in comp:
                    entry = self._cache[fid]
                    rate = entry.flow.rate_bps
                    for direction in entry.dirs:
                        direction.current_load_bps += rate

        # Host rates and the accruing-flow set, rebuilt in canonical
        # (flow id) order so incremental and full recomputes produce
        # identical floating-point sums.  The SoA mirror holds exactly
        # the delivered flows, so the arrays path gathers both from it
        # (same fid order, same per-host add order).
        for host in net.hosts():
            host.rx_rate_bps = 0.0
            host.tx_rate_bps = 0.0
        net._accrual_batch = None
        if state is not None:
            rx, tx = state.host_rates()
            for host, rx_rate, tx_rate in zip(state.hosts, rx.tolist(),
                                              tx.tolist()):
                host.rx_rate_bps = rx_rate
                host.tx_rate_bps = tx_rate
            accruing, accruing_slots, any_entries = state.accruing()
            net._accruing = accruing
            # Vectorized accrual needs per-entry last_used_at stamps
            # that only the scalar loop maintains, so flows carrying
            # flow-table entries keep the whole set on the scalar path.
            if accruing and not any_entries:
                net._accrual_batch = _arrays.AccrualBatch(
                    state, accruing, accruing_slots)
        else:
            accruing: List[FluidFlow] = []
            for fid in sorted(self._cache):
                entry = self._cache[fid]
                if not entry.delivered:
                    continue
                flow = entry.flow
                flow.dst.rx_rate_bps += flow.rate_bps
                flow.src.tx_rate_bps += flow.rate_bps
                if flow.rate_bps > 0:
                    accruing.append(flow)
            net._accruing = accruing

        if self.quotient is not None:
            self.quotient.rebuild(now)

    # -- internals --------------------------------------------------------

    def _scan_epochs(self):
        """Incremental dirt detection: pending flows + epoch changes.

        Returns (dirty flows by id, capacity-dirty links); updates the
        seen-epoch maps as it goes.
        """
        net = self.network
        dirty = dict(self._pending)
        cap_dirty_links: List = []
        for name, node in net.nodes.items():
            epoch = node.fwd_epoch
            if self._seen_node_epoch.get(name) != epoch:
                self._seen_node_epoch[name] = epoch
                for fid in self._node_flows.get(name, ()):
                    if fid not in dirty:
                        dirty[fid] = self._cache[fid].flow
        for link in net.links:
            path_epoch = link.path_epoch
            if self._seen_link_path_epoch.get(link.id) != path_epoch:
                self._seen_link_path_epoch[link.id] = path_epoch
                for fid in self._link_flows.get(link.id, ()):
                    if fid not in dirty:
                        dirty[fid] = self._cache[fid].flow
            cap_epoch = link.cap_epoch
            if self._seen_link_cap_epoch.get(link.id) != cap_epoch:
                self._seen_link_cap_epoch[link.id] = cap_epoch
                cap_dirty_links.append(link)
        return dirty, cap_dirty_links

    def _index(self, fid: int, entry: _CachedWalk) -> None:
        for name in entry.node_deps:
            self._node_flows.setdefault(name, set()).add(fid)
        for link_id in entry.link_deps:
            self._link_flows.setdefault(link_id, set()).add(fid)
        for direction in entry.dirs:
            self._dir_flows.setdefault(direction, set()).add(fid)

    def _unindex(self, fid: int, entry: _CachedWalk) -> None:
        for name in entry.node_deps:
            flows = self._node_flows.get(name)
            if flows is not None:
                flows.discard(fid)
        for link_id in entry.link_deps:
            flows = self._link_flows.get(link_id)
            if flows is not None:
                flows.discard(fid)
        for direction in entry.dirs:
            flows = self._dir_flows.get(direction)
            if flows is not None:
                flows.discard(fid)
                if not flows:
                    del self._dir_flows[direction]

    def _solve_component(self, comp: List[int]) -> None:
        """Max-min solve one component with the dense array kernel.

        The instance is built deterministically: flows in id order,
        directions interned in first-appearance order along those
        flows' cached paths.
        """
        self.components_solved += 1
        self.flows_solved += len(comp)
        entries = [self._cache[fid] for fid in comp]
        demands: List[float] = []
        dir_index: Dict[int, int] = {}  # id() of LinkDirection -> dense
        capacities: List[float] = []
        link_members: List[List[int]] = []
        flow_links: List[List[int]] = []
        for pos, entry in enumerate(entries):
            demand = entry.flow.demand_bps
            demands.append(demand)
            member = demand > EPSILON
            links_here: List[int] = []
            seen_here: Set[int] = set()
            for direction in entry.dirs:
                dense = dir_index.get(id(direction))
                if dense is None:
                    dense = len(capacities)
                    dir_index[id(direction)] = dense
                    capacities.append(direction.capacity_bps)
                    link_members.append([])
                if dense in seen_here:
                    continue
                seen_here.add(dense)
                links_here.append(dense)
                if member:
                    link_members[dense].append(pos)
            flow_links.append(links_here)
        kernel = _solver.get_kernel(self._solve_kernel)
        rates = kernel.solve(demands, capacities, link_members, flow_links)
        for pos, entry in enumerate(entries):
            entry.flow.rate_bps = rates[pos]

    def _solve_component_arrays(self, comp, slots=None):
        """Solve one component on the struct-of-arrays mirror.

        Same instance the scalar builder would produce (the mirror's
        first-occurrence marks reproduce its per-flow dedup, and
        :meth:`ArraysState.solve_component` interns directions in the
        identical first-appearance order), so the allocation is
        bit-for-bit the heap kernel's.  ``comp`` is the component's fid
        list; ``slots`` the matching slot vector when the caller got
        the component from :meth:`ArraysState.components` (which reads
        the mirror, so every member is interned by construction).
        Returns the component's ``(dirs, loads)`` for the caller's
        load refresh.
        """
        self.components_solved += 1
        self.flows_solved += len(comp)
        state = self._arrays
        if slots is None:
            for fid in comp:
                # Normally interned at walk time; this covers a kernel
                # switched to "arrays" mid-run (bulk-intern happens on
                # state creation, walks keep it current thereafter).
                if fid not in state.slot_of:
                    cached = self._cache[fid]
                    state.intern_flow(fid, cached.flow, cached.dirs)
            slots = state.gather_slots(comp)
        rates, dirs, loads = state.solve_component(slots)
        objs = state.objs
        for slot, rate in zip(slots.tolist(), rates.tolist()):
            objs[slot].rate_bps = rate
        return dirs, loads

    @property
    def stats(self) -> dict:
        """Counters for benchmarks and tests."""
        stats = {
            "cached_paths": len(self._cache),
            "full_recomputes": self.full_recomputes,
            "incremental_recomputes": self.incremental_recomputes,
            "flows_walked": self.flows_walked,
            "components_solved": self.components_solved,
            "flows_solved": self.flows_solved,
            "kernel": self._kernel,
        }
        if self._arrays is not None:
            stats["arrays"] = self._arrays.stats
        return stats
