"""The simulated data plane.

Figure 2's lower half: a discrete-event model of the network topology
(hosts, OpenFlow switches, routers, links) carrying traffic as *fluid
flows* — a flow is a rate on a path, not a stream of packets.  Rates
are max-min fair across links (progressive filling), recomputed when
flows start/stop or the control plane reprograms forwarding state.

Individual packets still exist for the cases that need them: the first
packet of a flow that misses in an OpenFlow table (it becomes a
PACKET_IN), and frames injected by PACKET_OUT.  Those are forwarded
hop-by-hop as events.
"""

from repro.dataplane.link import Link, LinkDirection
from repro.dataplane.node import Node, Port
from repro.dataplane.host import Host
from repro.dataplane.fib import FIB, FIBEntry, NextHop
from repro.dataplane.flowtable import FlowTable, FlowEntry
from repro.dataplane.switch import Switch
from repro.dataplane.router import Router
from repro.dataplane.flow import FluidFlow, PathResult, PathStatus
from repro.dataplane.fluid import max_min_allocation, validate_allocation
from repro.dataplane.solver import (
    KERNEL_CHOICES,
    MaxMinSolver,
    available_kernels,
    canonical_kernel,
    get_kernel,
    register_kernel,
    resolve_kernel,
)
from repro.dataplane.network import Network
from repro.dataplane.stats import StatsCollector, Sample

__all__ = [
    "Link",
    "LinkDirection",
    "Node",
    "Port",
    "Host",
    "FIB",
    "FIBEntry",
    "NextHop",
    "FlowTable",
    "FlowEntry",
    "Switch",
    "Router",
    "FluidFlow",
    "PathResult",
    "PathStatus",
    "max_min_allocation",
    "validate_allocation",
    "KERNEL_CHOICES",
    "MaxMinSolver",
    "available_kernels",
    "canonical_kernel",
    "get_kernel",
    "register_kernel",
    "resolve_kernel",
    "Network",
    "StatsCollector",
    "Sample",
]
