"""Struct-of-arrays fluid state and the vectorized max-min kernel.

The scalar solver path costs O(flows × hops) of *Python* per
recompute: `_solve_component` rebuilds a dense instance object by
object, `bottleneck_filling` walks it event by event, and
``Network.accrue`` visits every accruing flow per event.  This module
replaces all three with numpy state:

* :class:`FlowArrays` / :class:`LinkArrays` — interned
  struct-of-arrays mirrors of the cached walks: per-flow demand, rate
  and host slots; a padded path→direction incidence matrix (the CSR
  expansion is derived per solve); per-direction capacities.
* :class:`ArraysState` — the slotted container the
  :class:`~repro.dataplane.realloc.ReallocEngine` keeps **across
  recomputes**.  Stable components only patch demands, rates and
  capacities in place; rows are re-interned only when a flow is
  re-walked, and the whole state resets only on ``topo_epoch`` bumps /
  path-cache invalidation (full recomputes).
* :func:`bottleneck_filling_arrays` — the vectorized kernel.  It
  replays the heap kernel's float arithmetic in *batches*: per round
  it recomputes every live saturation key ``(capacity − frozen_load)
  / alive`` (the identical IEEE expression ``push_sat`` evaluates),
  then freezes either every unfrozen flow whose demand is ≤ the
  minimum key (in (demand, flow) order — the heap's pop order) or
  every unfrozen member of the links at the minimum key.  Within a
  batch the ``frozen_load`` additions run through ``np.add.at`` in
  the heap's order, and runs of equal addends commute, so the float
  trajectory — and therefore the allocation — is bit-for-bit the heap
  kernel's (pinned by ``tests/property/test_kernel_parity.py``).
* :class:`AccrualBatch` — one vectorized byte-accrual pass per rate
  timeline segment: ``rate · dt / 8`` elementwise, then ``np.add.at``
  scatters into gathered host/port/direction counter buffers in the
  scalar loop's visit order, keeping every counter bit-identical to
  the per-flow loop.

Everything degrades gracefully without numpy: ``HAVE_NUMPY`` gates the
kernel registry entry and the engine falls back to ``"heap"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.dataplane.solver import EPSILON

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataplane.flow import FluidFlow
    from repro.dataplane.host import Host
    from repro.dataplane.link import LinkDirection

try:  # the container bakes numpy in; guard anyway (no hard dep)
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy-less fallback
    _np = None
    HAVE_NUMPY = False

_INF = float("inf")


# ---------------------------------------------------------------------------
# The vectorized kernel
# ---------------------------------------------------------------------------


def _batch_fill(demands, capacities, entry_flow, entry_link):
    """Batched replay of the heap kernel over a dense instance.

    ``entry_flow``/``entry_link`` are the parallel CSR expansion of the
    flow→link incidence in flow-major, path order, **deduplicated per
    flow** (a path crossing a link twice counts once, as in the scalar
    kernels).  Returns the per-flow rate vector (float64).
    """
    np = _np
    num_flows = int(demands.shape[0])
    num_links = int(capacities.shape[0])
    rates = np.zeros(num_flows)
    if num_flows == 0:
        return rates
    unfrozen = demands > EPSILON           # member flows not yet frozen
    active_demand = np.where(unfrozen, demands, _INF)
    if entry_link.size:
        alive = np.bincount(entry_link[unfrozen[entry_flow]],
                            minlength=num_links)
    else:
        alive = np.zeros(num_links, dtype=np.int64)
    frozen_load = np.zeros(num_links)
    keys = np.empty(num_links)
    # Link -> entries CSR (entries within a link in flow-major order),
    # for the tied-saturation member scan below; flow -> entries CSR
    # (the stream is flow-major, so ranges are contiguous) for the
    # freeze scatter — O(frozen hops) per round, O(incidence) overall.
    # (value·n + position) makes the default sort stable — this
    # numpy's stable kind is several times slower than quicksort.
    total = entry_link.size
    link_order = np.argsort(entry_link * total + np.arange(total))
    link_start = np.zeros(num_links + 1, dtype=np.int64)
    if entry_link.size:
        np.cumsum(np.bincount(entry_link, minlength=num_links),
                  out=link_start[1:])
    flow_start = np.zeros(num_flows + 1, dtype=np.int64)
    np.cumsum(np.bincount(entry_flow, minlength=num_flows),
              out=flow_start[1:])
    level = 0.0

    while True:
        valid = alive > 0
        keys.fill(_INF)
        # The identical IEEE expression push_sat evaluates, on the
        # identical operands: frozen_load/alive only change when a
        # link is touched, and push_sat refreshes its key right then.
        np.divide(capacities - frozen_load, alive, out=keys, where=valid)
        ksat = float(keys.min()) if num_links else _INF
        dmin = float(active_demand.min())
        if dmin == _INF and ksat == _INF:
            break
        if dmin <= ksat:
            # Demand batch: the heap pops every demand event ≤ ksat
            # before any saturation event — freezing at the demand
            # only *raises* saturation keys (exactly; float noise can
            # undershoot by an ulp, which the next round handles the
            # same way the heap does).  Pop order is (demand, flow);
            # with all-equal demands that is plain flow order, so the
            # sort (and the freeze re-sort below) can be skipped.
            batch = np.nonzero(unfrozen & (active_demand <= ksat))[0]
            new_rates = demands[batch]
            peak = float(new_rates.max())
            if batch.size > 1 and peak != float(new_rates.min()):
                order = np.argsort(new_rates, kind="stable")
                batch = batch[order]
                new_rates = new_rates[order]
            if peak > level:
                level = peak
        else:
            # Saturation batch.  Exactly tied links are popped by the
            # heap in index order, and freezing one link's members
            # *recomputes* the keys of every tied link sharing a
            # member — float rounding can drift them off the tie by
            # an ulp, changing the rate its remaining members freeze
            # at.  Batching is therefore only exact for the maximal
            # index-order prefix of tied links with pairwise-disjoint
            # member sets: those are precisely the pops the heap
            # executes back to back with no key interference.  The
            # rest wait for the next round's fresh key recompute,
            # which replays any drift bit-for-bit.
            if ksat > level:
                level = ksat
            tied = np.nonzero(valid & (keys == ksat))[0]
            if level > ksat and tied.size > 1:
                # Water level above the key (float-undershoot clamp):
                # batch members may freeze at *unequal* rates
                # min(level, demand), so the multi-link order argument
                # below no longer holds — take one link at a time.
                tied = tied[:1]
            if tied.size == 1:
                span_ = link_order[link_start[tied[0]]:link_start[tied[0] + 1]]
                members = entry_flow[span_]
                batch = members[unfrozen[members]]
            else:
                claimed = np.zeros(num_flows, dtype=bool)
                accepted_any = False
                for link in tied.tolist():
                    span_ = link_order[link_start[link]:link_start[link + 1]]
                    members = entry_flow[span_]
                    members = members[unfrozen[members]]
                    if accepted_any and bool(claimed[members].any()):
                        break
                    claimed[members] = True
                    accepted_any = True
                batch = np.nonzero(claimed)[0]
            new_rates = np.minimum(level, demands[batch])
        rates[batch] = new_rates
        unfrozen[batch] = False
        active_demand[batch] = _INF
        # Freeze side effects, replayed in the heap's add order: the
        # entry stream is flow-major, so concatenating each frozen
        # flow's contiguous entry range in pop order — (demand, flow)
        # for demand pops, flow order for saturation pops — visits
        # links exactly as the heap's freeze() loop does.
        counts_b = flow_start[batch + 1] - flow_start[batch]
        total_b = int(counts_b.sum())
        if total_b:
            ends_b = np.cumsum(counts_b)
            sel = (np.repeat(flow_start[batch] - (ends_b - counts_b),
                             counts_b) + np.arange(total_b))
            links_sel = entry_link[sel]
            np.add.at(frozen_load, links_sel, rates[entry_flow[sel]])
            alive -= np.bincount(links_sel, minlength=num_links)
    return rates


def bottleneck_filling_arrays(
    demands: Sequence[float],
    capacities: Sequence[float],
    link_members: Sequence[Sequence[int]],
    flow_links: Sequence[Sequence[int]],
) -> List[float]:
    """Vectorized bottleneck filling; facade signature, list in/out.

    Bit-for-bit equal to
    :func:`repro.dataplane.solver.bottleneck_filling` on the same
    instance (same contract: ``flow_links`` deduplicated per flow,
    ``link_members`` restricted to flows with demand above
    ``EPSILON``).  ``link_members`` itself is not consulted — the
    alive counts are derived from the incidence and the demand mask,
    which the contract makes equivalent.
    """
    if not HAVE_NUMPY:  # pragma: no cover - numpy-less fallback
        raise RuntimeError("the 'arrays' kernel requires numpy")
    np = _np
    demand_vec = np.asarray(demands, dtype=np.float64)
    cap_vec = np.asarray(capacities, dtype=np.float64)
    counts = np.fromiter((len(links) for links in flow_links),
                         dtype=np.int64, count=len(flow_links))
    total = int(counts.sum()) if counts.size else 0
    entry_flow = np.repeat(np.arange(counts.size), counts)
    entry_link = np.fromiter(
        (link for links in flow_links for link in links),
        dtype=np.int64, count=total)
    return _batch_fill(demand_vec, cap_vec, entry_flow, entry_link).tolist()


# ---------------------------------------------------------------------------
# Persistent struct-of-arrays state
# ---------------------------------------------------------------------------


class FlowArrays:
    """Slotted per-flow columns: demand, rate, hosts, padded path rows.

    ``path[slot, :path_len[slot]]`` holds the direction slots of the
    flow's cached hops *including duplicates* (byte accrual visits
    every hop, like the scalar loop); ``path_first`` marks the first
    occurrence of each direction so solves count a twice-crossed link
    once, exactly as the scalar instance builder dedupes.
    """

    __slots__ = ("demand", "rate", "src_host", "dst_host", "path",
                 "path_len", "path_first", "has_entries", "cap", "width")

    def __init__(self, cap: int = 64, width: int = 8) -> None:
        np = _np
        self.cap = cap
        self.width = width
        self.demand = np.zeros(cap)
        self.rate = np.zeros(cap)
        self.src_host = np.zeros(cap, dtype=np.int32)
        self.dst_host = np.zeros(cap, dtype=np.int32)
        self.path = np.zeros((cap, width), dtype=np.int32)
        self.path_len = np.zeros(cap, dtype=np.int32)
        self.path_first = np.zeros((cap, width), dtype=bool)
        # Walk installed flow-table entries: such flows need per-entry
        # last_used_at stamps, so they keep accrual on the scalar path.
        self.has_entries = np.zeros(cap, dtype=bool)

    def grow_rows(self, need: int) -> None:
        np = _np
        new_cap = max(self.cap * 2, need)
        for name in ("demand", "rate"):
            col = np.zeros(new_cap)
            col[: self.cap] = getattr(self, name)
            setattr(self, name, col)
        for name in ("src_host", "dst_host", "path_len"):
            col = np.zeros(new_cap, dtype=np.int32)
            col[: self.cap] = getattr(self, name)
            setattr(self, name, col)
        entries = np.zeros(new_cap, dtype=bool)
        entries[: self.cap] = self.has_entries
        self.has_entries = entries
        path = np.zeros((new_cap, self.width), dtype=np.int32)
        path[: self.cap] = self.path
        self.path = path
        first = np.zeros((new_cap, self.width), dtype=bool)
        first[: self.cap] = self.path_first
        self.path_first = first
        self.cap = new_cap

    def grow_width(self, need: int) -> None:
        np = _np
        new_width = max(self.width * 2, need)
        path = np.zeros((self.cap, new_width), dtype=np.int32)
        path[:, : self.width] = self.path
        self.path = path
        first = np.zeros((self.cap, new_width), dtype=bool)
        first[:, : self.width] = self.path_first
        self.path_first = first
        self.width = new_width


class LinkArrays:
    """Slotted per-direction columns: capacity plus the object table."""

    __slots__ = ("capacity", "objs", "slot_of", "cap")

    def __init__(self, cap: int = 64) -> None:
        self.cap = cap
        self.capacity = _np.zeros(cap)
        self.objs: List["LinkDirection"] = []
        self.slot_of: Dict["LinkDirection", int] = {}

    def intern(self, direction: "LinkDirection") -> int:
        slot = self.slot_of.get(direction)
        if slot is None:
            slot = len(self.objs)
            if slot >= self.cap:
                new_cap = self.cap * 2
                capacity = _np.zeros(new_cap)
                capacity[: self.cap] = self.capacity
                self.capacity = capacity
                self.cap = new_cap
            self.objs.append(direction)
            self.slot_of[direction] = slot
            self.capacity[slot] = direction.capacity_bps
        return slot


class ArraysState:
    """The engine-persisted SoA mirror of the cached walks.

    Interning happens when the engine (re-)walks a flow; dropping when
    a cached walk is evicted.  Between those, solves and accrual run
    purely on the arrays — stable churn only patches rates and
    capacities in place.
    """

    def __init__(self) -> None:
        if not HAVE_NUMPY:  # pragma: no cover - callers gate on HAVE_NUMPY
            raise RuntimeError("ArraysState requires numpy")
        self.flows = FlowArrays()
        self.links = LinkArrays()
        self.slot_of: Dict[int, int] = {}      # flow id -> slot
        self.objs: List[Optional["FluidFlow"]] = []   # slot -> flow
        self._free: List[int] = []
        self._top = 0                           # slot high-water mark
        self.hosts: List["Host"] = []
        self._host_slot: Dict[int, int] = {}    # id(host) -> slot
        self._live_cache = None  # (fids, slots), fid-ascending
        # Counters for benchmarks and tests.
        self.interned = 0
        self.dropped = 0
        self.resets = 0

    def reset(self) -> None:
        """Drop every interned row (full recompute / cache flush)."""
        self.flows = FlowArrays()
        self.links = LinkArrays()
        self.slot_of = {}
        self.objs = []
        self._free = []
        self._top = 0
        self.hosts = []
        self._host_slot = {}
        self._live_cache = None
        self.resets += 1

    # -- interning --------------------------------------------------------

    def _host(self, host: "Host") -> int:
        slot = self._host_slot.get(id(host))
        if slot is None:
            slot = len(self.hosts)
            self._host_slot[id(host)] = slot
            self.hosts.append(host)
        return slot

    def intern_flow(self, fid: int, flow: "FluidFlow",
                    dirs: Sequence["LinkDirection"]) -> int:
        """(Re-)intern one delivered flow's row; returns its slot."""
        fa = self.flows
        slot = self.slot_of.get(fid)
        if slot is None:
            if self._free:
                slot = self._free.pop()
            else:
                slot = self._top
                self._top += 1
                if slot >= fa.cap:
                    fa.grow_rows(slot + 1)
            self.slot_of[fid] = slot
            self._live_cache = None
        while len(self.objs) <= slot:
            self.objs.append(None)
        self.objs[slot] = flow
        hops = len(dirs)
        if hops > fa.width:
            fa.grow_width(hops)
        fa.demand[slot] = flow.demand_bps
        fa.rate[slot] = flow.rate_bps
        fa.path_len[slot] = hops
        fa.has_entries[slot] = bool(flow.path is not None
                                    and flow.path.entries)
        row = fa.path[slot]
        first = fa.path_first[slot]
        seen = set()
        for pos, direction in enumerate(dirs):
            dslot = self.links.intern(direction)
            row[pos] = dslot
            first[pos] = dslot not in seen
            seen.add(dslot)
        fa.src_host[slot] = self._host(flow.src)
        fa.dst_host[slot] = self._host(flow.dst)
        self.interned += 1
        return slot

    def drop_flow(self, fid: int) -> None:
        slot = self.slot_of.pop(fid, None)
        if slot is not None:
            self.flows.path_len[slot] = 0
            self.flows.rate[slot] = 0.0
            self.flows.has_entries[slot] = False
            self.objs[slot] = None
            self._free.append(slot)
            self._live_cache = None
            self.dropped += 1

    def patch_capacity(self, link) -> None:
        """A link's capacity changed; patch interned directions in place."""
        for direction in (link.forward, link.reverse):
            slot = self.links.slot_of.get(direction)
            if slot is not None:
                self.links.capacity[slot] = direction.capacity_bps

    def zero_rate(self, fid: int) -> None:
        """Mirror ``flow.rate_bps = 0`` done outside a recompute
        (``stop_flow``), so a pre-recompute accrual flush adds 0."""
        slot = self.slot_of.get(fid)
        if slot is not None:
            self.flows.rate[slot] = 0.0

    # -- live-set views ---------------------------------------------------

    def live_sorted(self):
        """``(fids, slots)`` arrays over every live row, fid-ascending.

        Cached between intern/drop events — the fid order is what makes
        every vectorized rebuild below replay the scalar loops' visit
        order bit-for-bit.
        """
        cached = self._live_cache
        if cached is None:
            np = _np
            count = len(self.slot_of)
            fids = np.fromiter(self.slot_of.keys(), dtype=np.int64,
                               count=count)
            slots = np.fromiter(self.slot_of.values(), dtype=np.int64,
                                count=count)
            order = np.argsort(fids)       # unique keys: kind moot
            cached = self._live_cache = (fids[order], slots[order])
        return cached

    def host_rates(self):
        """Per-host ``(rx, tx)`` rate sums over live flows in fid order
        — the scalar host-rate rebuild's exact add order."""
        np = _np
        __, slots = self.live_sorted()
        fa = self.flows
        rates = fa.rate[slots]
        rx = np.zeros(len(self.hosts))
        tx = np.zeros(len(self.hosts))
        np.add.at(rx, fa.dst_host[slots], rates)
        np.add.at(tx, fa.src_host[slots], rates)
        return rx, tx

    def accruing(self):
        """``(flows, slots, any_entries)`` for live flows with a
        positive rate, in fid order — the scalar accruing rebuild."""
        __, slots = self.live_sorted()
        fa = self.flows
        sel = slots[fa.rate[slots] > 0.0]
        objs = self.objs
        flows = [objs[slot] for slot in sel.tolist()]
        return flows, sel, bool(fa.has_entries[sel].any())

    def components(self, seeds: Sequence["LinkDirection"]):
        """Partition the live flow/direction graph reachable from
        *seeds* (scalar-BFS seed order) into connected components.

        Returns ``(components, touched)``: per component the
        ``(fids, slots)`` pair in fid-ascending order — the exact
        membership and order the scalar BFS produces (both walk the
        same delivered-flow incidence) — plus every direction visited,
        including seed directions no live flow crosses (their stale
        loads still get zeroed).
        """
        np = _np
        fids_sorted, slots_sorted = self.live_sorted()
        fa = self.flows
        rows = fa.path[slots_sorted]
        lens = fa.path_len[slots_sorted]
        mask = np.arange(rows.shape[1]) < lens[:, None]
        hop_dir = rows[mask]                       # flow-major stream
        hop_flow = np.repeat(np.arange(slots_sorted.size), lens)
        num_dirs = len(self.links.objs)
        # direction -> member flows CSR.  Within-direction order is
        # irrelevant here (components are membership sets; each gets
        # sorted on emit), so the faster default sort is fine.
        order = np.argsort(hop_dir)
        flows_by_dir = hop_flow[order]
        start = np.zeros(num_dirs + 1, dtype=np.int64)
        if hop_dir.size:
            np.cumsum(np.bincount(hop_dir, minlength=num_dirs),
                      out=start[1:])
        visited = np.zeros(num_dirs, dtype=bool)
        in_comp = np.zeros(slots_sorted.size, dtype=bool)
        components = []
        touched: List["LinkDirection"] = []
        dir_slot_of = self.links.slot_of
        dir_objs = self.links.objs
        for seed in seeds:
            dslot = dir_slot_of.get(seed)
            if dslot is None:
                # Never interned: no delivered flow ever crossed it.
                touched.append(seed)
                continue
            if visited[dslot]:
                continue
            visited[dslot] = True
            frontier = np.array([dslot], dtype=np.int64)
            added = []
            scratch_flow = np.zeros(slots_sorted.size, dtype=bool)
            scratch_dir = np.zeros(num_dirs, dtype=bool)
            while frontier.size:
                # Expand frontier directions to their member flows.
                counts = start[frontier + 1] - start[frontier]
                total = int(counts.sum())
                if total:
                    ends = np.cumsum(counts)
                    idx = (np.repeat(start[frontier] - (ends - counts),
                                     counts) + np.arange(total))
                    member = flows_by_dir[idx]
                    scratch_flow[member] = True
                    scratch_flow &= ~in_comp
                    fresh = np.nonzero(scratch_flow)[0]
                    scratch_flow[fresh] = False
                else:
                    fresh = frontier[:0]
                if not fresh.size:
                    break
                in_comp[fresh] = True
                added.append(fresh)
                # Expand fresh flows to their unvisited directions.
                cand = rows[fresh][mask[fresh]]
                scratch_dir[cand] = True
                scratch_dir &= ~visited
                cand = np.nonzero(scratch_dir)[0]
                scratch_dir[cand] = False
                visited[cand] = True
                frontier = cand
            if added:
                sel = np.sort(np.concatenate(added))
                components.append((fids_sorted[sel], slots_sorted[sel]))
        for dslot in np.nonzero(visited)[0].tolist():
            touched.append(dir_objs[dslot])
        return components, touched

    # -- solving ----------------------------------------------------------

    def solve_component(self, slots):
        """Solve one component given its flow slots (component fid order).

        Returns ``(rates, dirs, loads)``: the per-flow rate vector plus
        the component's touched directions and their refreshed loads
        (``np.add.at`` over the raw hop incidence in flow-major order —
        the scalar refresh loop's exact visit order).
        """
        np = _np
        fa = self.flows
        demands = fa.demand[slots]
        rows = fa.path[slots]
        lens = fa.path_len[slots]
        raw_mask = np.arange(rows.shape[1]) < lens[:, None]
        first_mask = raw_mask & fa.path_first[slots]
        counts = first_mask.sum(axis=1)
        entry_flow = np.repeat(np.arange(slots.size), counts)
        entry_global = rows[first_mask]
        num_dirs = len(self.links.objs)
        # Dense-intern directions in first-appearance order along the
        # flow-major entry stream — the scalar instance builder's
        # order, so the heap tie-break (and thus the arithmetic) sees
        # the identical instance.  (value·n + position) stabilizes the
        # default sort, which beats both np.unique and stable argsort.
        total = entry_global.size
        order = np.argsort(entry_global.astype(np.int64) * total
                           + np.arange(total))
        sorted_vals = entry_global[order]
        boundary = np.empty(sorted_vals.size, dtype=bool)
        if boundary.size:
            boundary[0] = True
            np.not_equal(sorted_vals[1:], sorted_vals[:-1],
                         out=boundary[1:])
        uniq = sorted_vals[boundary]
        first_pos = order[boundary]      # stable ⇒ earliest entry index
        appearance = np.argsort(first_pos, kind="stable")
        rank = np.empty(num_dirs, dtype=np.int64)
        rank[uniq[appearance]] = np.arange(uniq.size)
        entry_link = rank[entry_global]
        caps = self.links.capacity[uniq[appearance]]
        rates = _batch_fill(demands, caps, entry_flow, entry_link)
        fa.rate[slots] = rates
        # Per-direction load refresh over the *raw* incidence
        # (duplicated hops count twice, as in the scalar loop; the
        # dense numbering here is arbitrary — only the per-direction
        # add order matters, and that is the flow-major stream).
        raw_flow = np.repeat(np.arange(slots.size), lens)
        raw_global = rows[raw_mask]
        uniq_raw = np.nonzero(np.bincount(raw_global,
                                          minlength=num_dirs))[0]
        rank[uniq_raw] = np.arange(uniq_raw.size)
        loads = np.zeros(uniq_raw.size)
        np.add.at(loads, rank[raw_global], rates[raw_flow])
        dirs = [self.links.objs[i] for i in uniq_raw.tolist()]
        return rates, dirs, loads

    def gather_slots(self, fids: Sequence[int]):
        """Slot vector for a component's flow ids (already in fid order)."""
        return _np.fromiter((self.slot_of[fid] for fid in fids),
                            dtype=_np.int64, count=len(fids))

    @property
    def stats(self) -> dict:
        return {
            "interned": self.interned,
            "dropped": self.dropped,
            "resets": self.resets,
            "live_flows": len(self.slot_of),
            "live_dirs": len(self.links.objs),
        }


class AccrualBatch:
    """One recompute's accruing set, prepared for vectorized flushes.

    Built after every recompute from the accruing flows (fid order);
    each :meth:`flush` replays one rate-timeline segment: the scalar
    loop's ``rate * dt / 8.0`` per flow, scattered into flow, host,
    direction and port byte counters through ``np.add.at`` in the
    scalar loop's visit order — bit-identical counters, O(numpy)
    instead of O(flows × hops) Python.

    Only eligible accruing sets get a batch (no flow-table entries on
    any accruing path — those need per-entry ``last_used_at`` stamps —
    and no active quotient); the network falls back to the scalar loop
    otherwise.
    """

    __slots__ = ("state", "flows", "slots", "hop_flow", "hop_dir", "dirs",
                 "src_idx", "src_hosts", "dst_idx", "dst_hosts")

    def __init__(self, state: ArraysState, flows: List["FluidFlow"],
                 slots=None) -> None:
        np = _np
        self.state = state
        self.flows = flows
        if slots is None:
            slots = np.fromiter((state.slot_of[f.id] for f in flows),
                                dtype=np.int64, count=len(flows))
        self.slots = slots
        fa = state.flows
        rows = fa.path[slots]
        lens = fa.path_len[slots]
        mask = np.arange(rows.shape[1]) < lens[:, None]
        self.hop_flow = np.repeat(np.arange(slots.size), lens)
        num_dirs = len(state.links.objs)
        hop_global = rows[mask]
        uniq = np.nonzero(np.bincount(hop_global, minlength=num_dirs))[0]
        rank = np.zeros(num_dirs, dtype=np.int64)
        rank[uniq] = np.arange(uniq.size)
        self.hop_dir = rank[hop_global]
        self.dirs = [state.links.objs[i] for i in uniq.tolist()]
        num_hosts = len(state.hosts)
        src = fa.src_host[slots]
        dst = fa.dst_host[slots]
        hrank = np.zeros(num_hosts, dtype=np.int64)
        uniq_src = np.nonzero(np.bincount(src, minlength=num_hosts))[0]
        hrank[uniq_src] = np.arange(uniq_src.size)
        self.src_idx = hrank[src]
        uniq_dst = np.nonzero(np.bincount(dst, minlength=num_hosts))[0]
        hrank[uniq_dst] = np.arange(uniq_dst.size)
        self.dst_idx = hrank[dst]
        self.src_hosts = [state.hosts[i] for i in uniq_src.tolist()]
        self.dst_hosts = [state.hosts[i] for i in uniq_dst.tolist()]

    def flush(self, dt: float) -> None:
        """Accrue one piecewise-constant segment of length ``dt``."""
        np = _np
        transferred = self.state.flows.rate[self.slots] * dt / 8.0
        for flow, amount in zip(self.flows, transferred.tolist()):
            flow.delivered_bytes += amount
        buf = np.fromiter((h.tx_bytes for h in self.src_hosts),
                          dtype=np.float64, count=len(self.src_hosts))
        np.add.at(buf, self.src_idx, transferred)
        for host, value in zip(self.src_hosts, buf.tolist()):
            host.tx_bytes = value
        buf = np.fromiter((h.rx_bytes for h in self.dst_hosts),
                          dtype=np.float64, count=len(self.dst_hosts))
        np.add.at(buf, self.dst_idx, transferred)
        for host, value in zip(self.dst_hosts, buf.tolist()):
            host.rx_bytes = value
        per_hop = transferred[self.hop_flow]
        dirs = self.dirs
        buf = np.fromiter((d.bytes_carried for d in dirs),
                          dtype=np.float64, count=len(dirs))
        np.add.at(buf, self.hop_dir, per_hop)
        for direction, value in zip(dirs, buf.tolist()):
            direction.bytes_carried = value
        buf = np.fromiter((d.src_port.tx_bytes for d in dirs),
                          dtype=np.float64, count=len(dirs))
        np.add.at(buf, self.hop_dir, per_hop)
        for direction, value in zip(dirs, buf.tolist()):
            direction.src_port.tx_bytes = value
        buf = np.fromiter((d.dst_port.rx_bytes for d in dirs),
                          dtype=np.float64, count=len(dirs))
        np.add.at(buf, self.hop_dir, per_hop)
        for direction, value in zip(dirs, buf.tolist()):
            direction.dst_port.rx_bytes = value


__all__ = [
    "HAVE_NUMPY",
    "AccrualBatch",
    "ArraysState",
    "FlowArrays",
    "LinkArrays",
    "bottleneck_filling_arrays",
]
