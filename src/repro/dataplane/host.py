"""End hosts: traffic sources and sinks.

A host has a single port, an IPv4 address and a MAC.  It terminates
fluid flows addressed to its IP (that is what the demo's "aggregated
rate of all flows arriving at the hosts" graph measures) and consumes
packet events addressed to it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.core.errors import TopologyError
from repro.dataplane.node import ForwardingDecision, Node
from repro.netproto.addr import IPv4Address, MACAddress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netproto.packet import FiveTuple, Packet


class Host(Node):
    """A server: one port, one IP, traffic source/sink."""

    kind = "host"

    def __init__(
        self,
        name: str,
        ip: "IPv4Address | str",
        gateway: "IPv4Address | str | None" = None,
    ):
        super().__init__(name)
        self.ip = IPv4Address(ip)
        self.gateway = IPv4Address(gateway) if gateway is not None else None
        self.add_port(1)
        self.rx_bytes = 0.0
        self.tx_bytes = 0.0
        self.rx_rate_bps = 0.0
        self.tx_rate_bps = 0.0
        self.received_packets: List["Packet"] = []

    @property
    def mac(self) -> MACAddress:
        """The MAC of the host's single port."""
        return self.ports[1].mac

    @property
    def uplink_port(self):
        """The single attachment port."""
        return self.ports[1]

    def forward_flow(self, flow_key: "FiveTuple", in_port: "int | None",
                     macs=None):
        """Hosts deliver traffic addressed to them, drop the rest.

        A flow *originating* here (in_port None) goes out of the single
        port.
        """
        if in_port is None:
            return ForwardingDecision.forward(1)
        if flow_key.dst_ip == self.ip:
            return ForwardingDecision.deliver()
        return ForwardingDecision.drop(f"{self.name} is not {flow_key.dst_ip}")

    def handle_packet(
        self, in_port: "int | None", packet: "Packet", now: float
    ) -> List[Tuple[int, "Packet"]]:
        """Consume packets addressed to this host (unicast or broadcast)."""
        if in_port is None:
            return [(1, packet)]
        addressed_to_us = (
            packet.eth.dst == self.mac
            or packet.eth.dst.is_broadcast()
            or (packet.ip is not None and packet.ip.dst == self.ip)
        )
        if addressed_to_us:
            self.received_packets.append(packet)
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} ip={self.ip}>"
