"""The simulated OpenFlow switch.

Forwarding is entirely table-driven: a fluid flow (or packet event)
is matched against the flow table and follows the entry's OUTPUT
action.  A table miss becomes a :class:`ForwardingDecision.miss`, which
the network turns into a PACKET_IN via the attached switch agent —
that is how reactive controllers (learning switch, 5-tuple ECMP)
get to see traffic.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.dataplane.flowtable import FlowTable
from repro.dataplane.node import ForwardingDecision, Node
from repro.openflow.actions import ActionGroup, ActionOutput
from repro.openflow.constants import PortNo
from repro.openflow.groups import GroupTable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netproto.packet import FiveTuple, Packet

_dpid_counter = itertools.count(1)


def reset_dpids() -> None:
    """Restart auto-dpid allocation (scenario-run determinism)."""
    global _dpid_counter
    _dpid_counter = itertools.count(1)


class Switch(Node):
    """An OpenFlow switch model."""

    kind = "switch"

    def __init__(self, name: str, dpid: "int | None" = None, num_ports: int = 0):
        super().__init__(name)
        self.dpid = dpid if dpid is not None else next(_dpid_counter)
        self.table = FlowTable()
        self.groups = GroupTable()
        self._agent = None  # set by SwitchAgent.attach()
        for __ in range(num_ports):
            self.add_port()

    @property
    def fwd_epoch(self) -> int:
        """Node epoch folded with the flow/group table versions: every
        flow-mod, group-mod or expiry shows up as a change here."""
        return self._fwd_epoch + self.table.version + self.groups.version

    @property
    def agent(self):
        """The attached switch agent (controller connection), if any."""
        return self._agent

    @agent.setter
    def agent(self, value) -> None:
        if value is not self._agent:
            self._agent = value
            # Attaching/detaching a controller changes what a table
            # miss means (MISS vs DROP), i.e. the forwarding outcome.
            self._fwd_epoch += 1

    def forward_flow(self, flow_key: "FiveTuple", in_port: "int | None",
                     macs=None):
        """Match the flow table; miss -> controller (if an agent is attached)."""
        dl_src, dl_dst = macs if macs is not None else (None, None)
        entry = self.table.match_five_tuple(
            flow_key, in_port=in_port, dl_src=dl_src, dl_dst=dl_dst
        )
        if entry is None:
            if self.agent is not None:
                return ForwardingDecision.miss("table miss")
            return ForwardingDecision.drop("table miss, no controller")
        out_ports = entry.output_ports()
        if not out_ports:
            group_decision = self._resolve_group_flow(entry, flow_key)
            if group_decision is not None:
                return group_decision
            return ForwardingDecision.drop("entry drops")
        first = out_ports[0]
        if first == PortNo.CONTROLLER:
            return ForwardingDecision.miss("entry punts to controller")
        if first == PortNo.IN_PORT:
            first = in_port if in_port is not None else 0
        if first not in self.ports:
            return ForwardingDecision.drop(f"no such port {first}")
        return ForwardingDecision.forward(first, entry=entry)

    def _resolve_group_flow(self, entry, flow_key: "FiveTuple"):
        """Resolve an ActionGroup entry to a concrete egress (or None)."""
        group_actions = [a for a in entry.actions if isinstance(a, ActionGroup)]
        if not group_actions:
            return None
        group = self.groups.get(group_actions[0].group_id)
        if group is None:
            return ForwardingDecision.drop(
                f"entry references missing group {group_actions[0].group_id}"
            )
        # Per-switch seed: same anti-polarisation property as routers.
        bucket = group.select_bucket(flow_key, seed=self.dpid)
        if bucket is None:
            return ForwardingDecision.drop("group has no buckets")
        for action in bucket.actions:
            if isinstance(action, ActionOutput) and action.port in self.ports:
                return ForwardingDecision.forward(action.port, entry=entry)
        return ForwardingDecision.drop("group bucket has no usable output")

    def handle_packet(
        self, in_port: "int | None", packet: "Packet", now: float
    ) -> List[Tuple[int, "Packet"]]:
        """Pipeline for individual packets (first packets, PACKET_OUT)."""
        entry = self.table.match_packet(packet, in_port=in_port)
        if entry is None:
            if self.agent is not None:
                self.agent.packet_in(in_port if in_port is not None else 0, packet, now)
            return []
        entry.last_used_at = now
        outputs: List[Tuple[int, "Packet"]] = []
        for port_no in entry.output_ports():
            outputs.extend(self._resolve_output(port_no, in_port, packet, now))
        if not outputs:
            flow_key = packet.five_tuple()
            if flow_key is not None:
                decision = self._resolve_group_flow(entry, flow_key)
                if decision is not None and decision.out_port is not None:
                    outputs.append((decision.out_port, packet))
        return outputs

    def flood_ports(self, in_port: "int | None") -> List[int]:
        """Every connected port except the ingress one."""
        return [
            number
            for number, port in sorted(self.ports.items())
            if port.connected() and number != in_port
        ]

    def _resolve_output(
        self, port_no: int, in_port: "int | None", packet: "Packet", now: float
    ) -> List[Tuple[int, "Packet"]]:
        if port_no == PortNo.FLOOD or port_no == PortNo.ALL:
            return [(number, packet) for number in self.flood_ports(in_port)]
        if port_no == PortNo.CONTROLLER:
            if self.agent is not None:
                self.agent.packet_in(in_port if in_port is not None else 0, packet, now)
            return []
        if port_no == PortNo.IN_PORT and in_port is not None:
            return [(in_port, packet)]
        if port_no in self.ports:
            return [(port_no, packet)]
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Switch {self.name} dpid={self.dpid} entries={len(self.table)}>"
