"""Fluid flows and their computed paths.

A :class:`FluidFlow` is the unit of data-plane traffic: a desired rate
(demand) between two hosts, carried along whatever path the current
forwarding state produces.  The *actual* rate is assigned by the
max-min fair solver and integrated into delivered bytes whenever the
network's time advances.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.netproto.addr import IPv4Address
from repro.netproto.packet import (
    FiveTuple,
    IPPROTO_UDP,
    Packet,
    make_udp_packet,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataplane.flowtable import FlowEntry
    from repro.dataplane.host import Host
    from repro.dataplane.link import Link, LinkDirection
    from repro.dataplane.switch import Switch


class PathStatus(enum.Enum):
    """Outcome of walking the forwarding state for a flow."""

    DELIVERED = "delivered"  # a complete src -> dst path exists
    MISS = "miss"            # an OpenFlow table miss interrupted the walk
    NO_ROUTE = "no_route"    # a router had no matching FIB entry
    DROPPED = "dropped"      # an entry or host explicitly dropped it
    LOOP = "loop"            # forwarding state loops


@dataclass
class PathResult:
    """A computed forwarding path and everything met along the way."""

    status: PathStatus
    hops: List["LinkDirection"] = field(default_factory=list)
    entries: List[Tuple["Switch", "FlowEntry"]] = field(default_factory=list)
    miss_node: Optional[str] = None
    detail: str = ""
    # The down link that stopped the walk, when the walk was stopped by
    # one.  It is not in ``hops`` (the flow never crossed it) but the
    # incremental reallocation engine must re-walk this flow when that
    # link changes state, so it is part of the walk's dependency set.
    blocking_link: Optional["Link"] = None

    @property
    def delivered(self) -> bool:
        return self.status is PathStatus.DELIVERED

    def node_names(self) -> List[str]:
        """The sequence of node names along the path (src first)."""
        if not self.hops:
            return []
        names = [self.hops[0].src_port.node.name]
        names.extend(hop.dst_port.node.name for hop in self.hops)
        return names


class FluidFlow:
    """A constant-demand fluid flow between two hosts."""

    _ids = itertools.count(1)

    @classmethod
    def reset_ids(cls) -> None:
        """Restart flow numbering (scenario-run determinism).

        Flow ids leak into auto-chosen source ports (40000 + id) and
        therefore into five-tuple ECMP hashes, so a reproducible
        scenario must start numbering from the same point.
        """
        cls._ids = itertools.count(1)

    def __init__(
        self,
        src: "Host",
        dst: "Host",
        demand_bps: float,
        src_port: "int | None" = None,
        dst_port: int = 9000,
        protocol: int = IPPROTO_UDP,
        start_time: float = 0.0,
        end_time: "float | None" = None,
    ):
        if demand_bps <= 0:
            raise ValueError(f"flow demand must be positive: {demand_bps}")
        self.id = next(self._ids)
        self.src = src
        self.dst = dst
        self.demand_bps = float(demand_bps)
        self.start_time = float(start_time)
        self.end_time = float(end_time) if end_time is not None else None
        chosen_src_port = src_port if src_port is not None else 40000 + self.id
        self.key = FiveTuple(
            src_ip=src.ip,
            dst_ip=dst.ip,
            protocol=protocol,
            src_port=chosen_src_port,
            dst_port=dst_port,
        )
        self.active = False
        self.rate_bps = 0.0
        self.delivered_bytes = 0.0
        self.path: Optional[PathResult] = None
        # Dedup guard: switch name -> flow-table version at the last
        # PACKET_IN we triggered there (see Network._report_miss).
        self.reported_misses: dict = {}

    @property
    def name(self) -> str:
        """Short printable identity."""
        return f"flow{self.id}[{self.src.name}->{self.dst.name}]"

    def first_packet(self, payload: bytes = b"", size: int = 1500) -> Packet:
        """Materialise the flow's first packet (for PACKET_IN).

        ARP is elided: the frame is addressed to the destination host's
        MAC directly, as if resolution already happened.
        """
        return make_udp_packet(
            src_mac=self.src.mac,
            dst_mac=self.dst.mac,
            src_ip=self.key.src_ip,
            dst_ip=self.key.dst_ip,
            src_port=self.key.src_port,
            dst_port=self.key.dst_port,
            payload=payload,
            size=size,
        )

    def is_running(self, now: float) -> bool:
        """Whether the flow should be active at ``now``."""
        if now < self.start_time:
            return False
        if self.end_time is not None and now >= self.end_time:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "idle"
        return (
            f"<FluidFlow {self.name} demand={self.demand_bps / 1e9:.3f}Gbps "
            f"rate={self.rate_bps / 1e9:.3f}Gbps {state}>"
        )
