"""The simulated router data plane.

A router forwards by longest-prefix match in its FIB.  Multiple next
hops on the winning entry mean ECMP; the paper's BGP demo resolves
ECMP by hashing IP source and destination, which is what
:meth:`Router.pick_next_hop` does.  Each router derives its own hash
seed from its name so parallel paths do not polarise (every router
picking the same index for every flow), while staying deterministic
across runs.
"""

from __future__ import annotations

import zlib
from typing import List, Optional, Tuple, TYPE_CHECKING

from repro.dataplane.fib import FIB, FIBEntry, NextHop
from repro.dataplane.node import ForwardingDecision, Node
from repro.netproto.addr import IPv4Address, IPv4Prefix
from repro.netproto.hashing import ecmp_hash, two_tuple_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netproto.packet import FiveTuple, Packet


class Router(Node):
    """An IP router with an ECMP-capable FIB."""

    kind = "router"

    def __init__(self, name: str, router_id: "IPv4Address | str | None" = None):
        super().__init__(name)
        self.router_id = IPv4Address(router_id) if router_id is not None else None
        self.fib = FIB()
        # Per-router hash seed: deterministic, but different per device.
        self.hash_seed = zlib.crc32(name.encode())
        self.interface_addrs: dict[int, IPv4Address] = {}
        # Int-set mirror of interface_addrs for O(1) "is it mine?"
        # checks on the forwarding hot path.
        self._interface_ints: set[int] = set()

    @property
    def fwd_epoch(self) -> int:
        """Node epoch folded with the FIB version: any route install or
        withdrawal invalidates cached paths through this router."""
        return self._fwd_epoch + self.fib.version

    def set_interface(self, port_no: int, address: "IPv4Address | str",
                      prefix: "IPv4Prefix | str | None" = None) -> None:
        """Assign an IP to a port; optionally install the connected route."""
        addr = IPv4Address(address)
        self.interface_addrs[port_no] = addr
        self._interface_ints.add(int(addr))
        self.bump_fwd_epoch()  # the deliver-to-self set changed
        if prefix is not None:
            self.fib.install(prefix, [NextHop(port=port_no, gateway=None)])

    def interface(self, port_no: int) -> Optional[IPv4Address]:
        """The IP configured on a port, if any."""
        return self.interface_addrs.get(port_no)

    def pick_next_hop(self, flow_key: "FiveTuple", entry: FIBEntry) -> NextHop:
        """ECMP selection by hash of (src IP, dst IP) — the BGP demo's rule."""
        if len(entry.next_hops) == 1:
            return entry.next_hops[0]
        key = two_tuple_hash(flow_key.src_ip, flow_key.dst_ip, seed=self.hash_seed)
        return entry.next_hops[ecmp_hash(key, len(entry.next_hops))]

    def forward_flow(self, flow_key: "FiveTuple", in_port: "int | None",
                     macs=None):
        """LPM lookup + ECMP choice (MACs are irrelevant at L3)."""
        # Deliver to self? Routers terminate traffic addressed to one of
        # their interfaces (control-plane traffic is not fluid, but the
        # guard keeps behaviour sane).
        if int(flow_key.dst_ip) in self._interface_ints:
            return ForwardingDecision.deliver()
        entry = self.fib.lookup(flow_key.dst_ip)
        if entry is None:
            return ForwardingDecision.no_route(f"no route to {flow_key.dst_ip}")
        hop = self.pick_next_hop(flow_key, entry)
        if hop.port not in self.ports:
            return ForwardingDecision.drop(f"route points at missing port {hop.port}")
        if in_port is not None and hop.port == in_port:
            # Sending a flow back out of its ingress port means the
            # routing state is looping; report a drop rather than
            # ping-ponging forever.
            return ForwardingDecision.drop("next hop equals ingress port")
        return ForwardingDecision.forward(hop.port)

    def handle_packet(
        self, in_port: "int | None", packet: "Packet", now: float
    ) -> List[Tuple[int, "Packet"]]:
        """Packet-event forwarding: LPM + TTL decrement."""
        if packet.ip is None:
            return []
        if int(packet.ip.dst) in self._interface_ints:
            return []  # terminated locally
        if packet.ip.ttl <= 1:
            return []  # TTL exceeded
        entry = self.fib.lookup(packet.ip.dst)
        if entry is None:
            return []
        flow_key = packet.five_tuple()
        if flow_key is None:
            return []
        hop = self.pick_next_hop(flow_key, entry)
        if hop.port not in self.ports:
            return []
        packet.ip.ttl -= 1
        return [(hop.port, packet)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Router {self.name} routes={len(self.fib)}>"
