"""How fleet workers come to exist: the pluggable transport layer.

Every transport speaks the same frame protocol to the same
coordinator — what varies is only where the workers run:

* ``inprocess``       — worker loops in daemon threads of the current
  process, connected over loopback.  Zero spawn cost; the test and
  notebook transport.  (Scenario runs hold the GIL, so this measures
  coordination, not parallel speedup.)
* ``multiprocessing`` — worker processes on this box (``spawn``
  context: the coordinator's server threads make ``fork`` unsafe),
  connected over loopback.  The one-box scale-out transport.
* ``tcp``             — launches nothing; the coordinator's port is
  the contract and workers join from anywhere with
  ``repro fleet join host:port``.

A transport only *launches and reaps* workers; all work assignment,
failure handling and result flow happen in the protocol, which is why
a test can kill a ``multiprocessing`` worker with SIGKILL and the
coordinator's reclaim logic — not the transport — carries the run.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.fleet.worker import worker_main

TRANSPORTS = ("inprocess", "multiprocessing", "tcp")


class InProcessTransport:
    """Workers as daemon threads of this very process."""

    name = "inprocess"
    #: Supervised transports launched every worker themselves, so
    #: "none alive before the work is done" means the run is wedged.
    supervised = True

    def __init__(self,
                 worker_options: "Optional[Dict[str, Any]]" = None) -> None:
        self._threads: List[threading.Thread] = []
        #: Extra keyword arguments for every :func:`worker_main` —
        #: reconnect/backoff tuning, or a chaos socket wrapper (see
        #: :class:`repro.fleet.chaos.ChaosTransport`).
        self._worker_options = dict(worker_options or {})

    def _options_for(self, index: int) -> Dict[str, Any]:
        """Per-worker keyword arguments (subclasses derive per-index
        state here, e.g. one chaos schedule per worker)."""
        return dict(self._worker_options)

    def launch(self, address: Tuple[str, int], count: int) -> None:
        host, port = address
        for index in range(count):
            thread = threading.Thread(
                target=worker_main, args=(host, port, f"inproc-{index}"),
                kwargs=self._options_for(index),
                daemon=True, name=f"fleet-worker-{index}")
            thread.start()
            self._threads.append(thread)

    def alive(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    def join(self, timeout: Optional[float] = None) -> None:
        for thread in self._threads:
            thread.join(timeout)

    def shutdown(self) -> None:
        self.join(timeout=1.0)


class MultiprocessTransport:
    """Workers as local processes (``spawn`` start method)."""

    name = "multiprocessing"
    supervised = True

    def __init__(self,
                 worker_options: "Optional[Dict[str, Any]]" = None) -> None:
        self._processes: List[multiprocessing.process.BaseProcess] = []
        # Options must pickle into spawn children: scalars only here
        # (socket wrappers can't cross a process boundary — chaos for
        # external workers rides the REPRO_FLEET_CHAOS_SEED env hook).
        self._worker_options = dict(worker_options or {})

    def launch(self, address: Tuple[str, int], count: int) -> None:
        host, port = address
        ctx = multiprocessing.get_context("spawn")
        for index in range(count):
            process = ctx.Process(
                target=worker_main, args=(host, port, f"mp-{index}"),
                kwargs=dict(self._worker_options),
                daemon=True, name=f"fleet-worker-{index}")
            process.start()
            self._processes.append(process)

    def alive(self) -> bool:
        return any(process.is_alive() for process in self._processes)

    def join(self, timeout: Optional[float] = None) -> None:
        for process in self._processes:
            process.join(timeout)

    def shutdown(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        self.join(timeout=2.0)


class TcpTransport:
    """No launching at all: workers join over the network."""

    name = "tcp"
    supervised = False

    def launch(self, address: Tuple[str, int], count: int) -> None:
        pass  # the coordinator's listener is the whole transport

    def alive(self) -> bool:
        return True  # external workers may join at any time

    def join(self, timeout: Optional[float] = None) -> None:
        pass

    def shutdown(self) -> None:
        pass


def transport_from_name(name: str):
    """CLI/config string -> transport instance."""
    if name == "inprocess":
        return InProcessTransport()
    if name == "multiprocessing":
        return MultiprocessTransport()
    if name == "tcp":
        return TcpTransport()
    raise ConfigurationError(
        f"unknown fleet transport {name!r}; expected one of {TRANSPORTS}")
