"""The fleet worker: lease a chunk, run it, stream the records back.

A :class:`FleetWorker` is a pull-based client of the coordinator: it
connects (over loopback for the in-process/multiprocessing transports,
across the network for ``repro fleet join``), introduces itself, and
loops *request -> run -> records -> chunk_done* until the coordinator
says ``done``.  Scenario execution reuses the campaign's fault-
isolated entry point (:func:`run_scenario_dict_safe`) and record
assembly, so a record produced by a fleet worker is byte-for-byte the
record a single-box campaign would have persisted for the same spec.

A background heartbeat thread keeps the lease alive while a long
scenario runs (the interval comes from the coordinator's ``welcome``);
socket writes are serialized by a lock since records and heartbeats
share the connection.

Test hook: ``REPRO_FLEET_SELFKILL_AFTER=<n>`` makes the worker SIGKILL
its own process after streaming ``n`` records — how the reclaim tests
simulate a machine dying mid-chunk without cooperation.
"""

from __future__ import annotations

import logging
import os
import signal
import socket
import threading
import time as _time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.api.metrics import scenario_metrics
from repro.core.errors import SimulationError
from repro.fleet.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.results.records import make_record
from repro.scenarios.campaign import run_scenario_dict_safe
from repro.scenarios.runner import result_fingerprint

_log = logging.getLogger("repro.fleet")

_SELFKILL_ENV = "REPRO_FLEET_SELFKILL_AFTER"

#: Scenario determinism rides process-global id counters that every
#: run resets (see ``ScenarioRunner``); two scenarios running
#: concurrently in ONE process would interleave allocations and
#: corrupt each other's results.  Workers therefore serialize
#: execution per process — a real cost only for the in-process
#: transport (several worker threads share this lock), which exists to
#: exercise coordination, not to parallelize CPU-bound scenario runs
#: the GIL would serialize anyway.
_EXECUTION_LOCK = threading.Lock()


@dataclass
class WorkerStats:
    """What one worker session did."""

    worker_id: str = ""
    chunks: int = 0
    records: int = 0
    errors: int = 0   # chunk-level failures reported back


class FleetWorker:
    """One worker session against a coordinator."""

    def __init__(self, host: str, port: int,
                 worker_id: Optional[str] = None,
                 connect_timeout: float = 10.0):
        self.host = host
        self.port = port
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.connect_timeout = connect_timeout
        self._sock: Optional[socket.socket] = None
        self._send_lock = threading.Lock()
        self._stop_heartbeat = threading.Event()
        self._records_sent = 0
        self._selfkill_after = int(os.environ.get(_SELFKILL_ENV, "0") or 0)

    # -- plumbing ----------------------------------------------------------

    def _connect(self) -> socket.socket:
        """Dial the coordinator, retrying until ``connect_timeout`` —
        ``repro fleet join`` often races ``fleet serve`` coming up."""
        deadline = _time.monotonic() + self.connect_timeout
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout)
                # The timeout bounds the CONNECT only; session recvs
                # block indefinitely (a busy coordinator may be slow
                # to answer, which must not read as worker death).
                sock.settimeout(None)
                return sock
            except OSError:
                if _time.monotonic() >= deadline:
                    raise
                _time.sleep(0.1)

    def _send(self, message: Dict[str, Any]) -> None:
        assert self._sock is not None
        with self._send_lock:
            send_message(self._sock, message)

    def _recv(self) -> Dict[str, Any]:
        assert self._sock is not None
        message = recv_message(self._sock)
        if message is None:
            raise ProtocolError("coordinator closed the connection")
        if message["type"] == "error":
            raise ProtocolError(
                f"coordinator rejected us: {message.get('message')}")
        return message

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._stop_heartbeat.wait(interval):
            try:
                self._send({"type": "heartbeat"})
            except OSError:
                return

    # -- the work ----------------------------------------------------------

    def _run_payload(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One spec dict -> the exact record a single-box
        ``Campaign.run(store=...)`` would append for it."""
        with _EXECUTION_LOCK:
            raw = run_scenario_dict_safe(payload)
        return make_record(payload, raw,
                           fingerprint=result_fingerprint(raw),
                           metrics=scenario_metrics(raw))

    def _run_chunk(self, chunk_id: int, specs: Any) -> None:
        if not isinstance(specs, list):
            raise ProtocolError("chunk message without a spec list")
        for payload in specs:
            record = self._run_payload(payload)
            self._send({"type": "record", "chunk": chunk_id,
                        "record": record})
            self._records_sent += 1
            if 0 < self._selfkill_after <= self._records_sent:
                _log.warning("fleet worker %s: self-kill test hook firing",
                             self.worker_id)
                os.kill(os.getpid(), signal.SIGKILL)
        self._send({"type": "chunk_done", "chunk": chunk_id})

    def run(self) -> WorkerStats:
        """Serve until the coordinator runs out of work."""
        stats = WorkerStats(worker_id=self.worker_id)
        self._sock = self._connect()
        heartbeat: Optional[threading.Thread] = None
        try:
            self._send({"type": "hello", "worker": self.worker_id,
                        "protocol": PROTOCOL_VERSION})
            welcome = self._recv()
            if welcome["type"] != "welcome":
                raise ProtocolError(
                    f"expected welcome, got {welcome['type']!r}")
            # The coordinator may have uniquified our name.
            self.worker_id = welcome.get("worker", self.worker_id)
            stats.worker_id = self.worker_id
            interval = float(welcome.get("heartbeat", 5.0))
            heartbeat = threading.Thread(
                target=self._heartbeat_loop, args=(max(0.05, interval),),
                daemon=True, name=f"fleet-heartbeat-{self.worker_id}")
            heartbeat.start()
            while True:
                self._send({"type": "request"})
                reply = self._recv()
                kind = reply["type"]
                if kind == "done":
                    self._send({"type": "bye"})
                    stats.records = self._records_sent
                    return stats
                if kind == "wait":
                    _time.sleep(float(reply.get("seconds", 0.2)))
                    continue
                if kind != "chunk":
                    raise ProtocolError(
                        f"expected chunk/wait/done, got {kind!r}")
                chunk_id = reply.get("chunk")
                try:
                    self._run_chunk(chunk_id, reply.get("specs"))
                    stats.chunks += 1
                except (OSError, ProtocolError):
                    raise  # connection-level: nothing useful to report
                except Exception as exc:  # noqa: BLE001 - report, move on
                    # Infrastructure failure outside per-scenario fault
                    # isolation (record assembly, serialization); hand
                    # the chunk back for a retry elsewhere.
                    stats.errors += 1
                    self._send({"type": "chunk_error", "chunk": chunk_id,
                                "error": f"{type(exc).__name__}: {exc}"})
        finally:
            self._stop_heartbeat.set()
            if heartbeat is not None:
                heartbeat.join(timeout=2.0)
            try:
                self._sock.close()
            except OSError:
                pass


def worker_main(host: str, port: int,
                worker_id: Optional[str] = None,
                connect_timeout: float = 10.0) -> int:
    """Process/thread entry point (module-level so it pickles into
    ``multiprocessing`` children); returns an exit code."""
    try:
        stats = FleetWorker(host, port, worker_id=worker_id,
                            connect_timeout=connect_timeout).run()
    except (OSError, SimulationError) as exc:
        _log.error("fleet worker failed: %s", exc)
        return 1
    _log.info("fleet worker %s finished: %d chunk(s), %d record(s)",
              stats.worker_id, stats.chunks, stats.records)
    return 0
