"""The fleet worker: lease a chunk, run it, stream the records back.

A :class:`FleetWorker` is a pull-based client of the coordinator: it
connects (over loopback for the in-process/multiprocessing transports,
across the network for ``repro fleet join``), introduces itself, and
loops *request -> run -> records -> chunk_done* until the coordinator
says ``done``.  Scenario execution reuses the campaign's fault-
isolated entry point (:func:`run_scenario_dict_safe`) and record
assembly, so a record produced by a fleet worker is byte-for-byte the
record a single-box campaign would have persisted for the same spec.

A dropped connection is not worker death: the session loop reconnects
with seeded exponential backoff + jitter and re-introduces itself
under the same *stable* worker identity (the requested id never
drifts, even when a session's assigned name was uniquified), and the
coordinator's ingest dedup makes the re-run of an interrupted chunk
harmless.  Only a semantic rejection — version mismatch, protocol
violation, quarantine — ends the worker immediately; those repeat
identically on retry.

A background heartbeat thread keeps the lease alive while a long
scenario runs (the interval comes from the coordinator's ``welcome``).
Each session owns its heartbeat thread and hands it the session's
socket explicitly: the thread is signalled and joined *before* the
socket closes, so it can never race a teardown or send on a successor
session's connection; inside the loop only ``OSError`` is swallowed
(the socket dying under a send is expected; anything else is a bug
that should surface).  Socket writes are serialized by a lock since
records and heartbeats share the connection.

Test hooks: ``REPRO_FLEET_SELFKILL_AFTER=<n>`` makes the worker
SIGKILL its own process after streaming ``n`` records — how the
reclaim tests simulate a machine dying mid-chunk without cooperation.
``REPRO_FLEET_CHAOS_SEED=<s>`` wraps every coordinator connection in a
seeded :class:`~repro.fleet.chaos.ChaosSchedule` so external workers
misbehave deterministically (see :mod:`repro.fleet.chaos`).
"""

from __future__ import annotations

import logging
import os
import random
import signal
import socket
import threading
import time as _time
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.api.metrics import scenario_metrics
from repro.core.errors import SimulationError
from repro.fleet.protocol import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.obs.metrics import metrics
from repro.obs.spans import maybe_enable_from_env, span
from repro.results.records import make_record
from repro.scenarios.campaign import run_scenario_dict_safe
from repro.scenarios.runner import result_fingerprint

_log = logging.getLogger("repro.fleet")

_SELFKILL_ENV = "REPRO_FLEET_SELFKILL_AFTER"

#: Session failures worth retrying: the connection (or the
#: coordinator's process) died.  Plain ProtocolError is excluded on
#: purpose — a version mismatch or quarantine rejection repeats
#: identically, so retrying it only burns the backoff budget.
_RETRYABLE = (OSError, ConnectionClosed)

#: Scenario determinism rides process-global id counters that every
#: run resets (see ``ScenarioRunner``); two scenarios running
#: concurrently in ONE process would interleave allocations and
#: corrupt each other's results.  Workers therefore serialize
#: execution per process — a real cost only for the in-process
#: transport (several worker threads share this lock), which exists to
#: exercise coordination, not to parallelize CPU-bound scenario runs
#: the GIL would serialize anyway.
_EXECUTION_LOCK = threading.Lock()


@dataclass
class WorkerStats:
    """What one worker session did."""

    worker_id: str = ""
    chunks: int = 0
    records: int = 0
    errors: int = 0       # chunk-level failures reported back
    reconnects: int = 0   # sessions lost and re-established


class FleetWorker:
    """One worker against a coordinator, across as many TCP sessions
    as it takes."""

    def __init__(self, host: str, port: int,
                 worker_id: Optional[str] = None,
                 connect_timeout: float = 10.0,
                 reconnect_attempts: int = 5,
                 backoff_base: float = 0.1,
                 backoff_max: float = 5.0,
                 backoff_seed: Optional[int] = None,
                 socket_wrapper: "Optional[Callable[[Any], Any]]" = None):
        self.host = host
        self.port = port
        # The identity requested in every hello.  Stable across
        # reconnects — the coordinator frees the name on disconnect,
        # so an idempotent re-hello normally gets the same name (and
        # shard) back; if the old session lingers, uniquification
        # hands out a fresh shard and ingest dedup keeps both honest.
        self.requested_id = (worker_id
                            or f"{socket.gethostname()}-{os.getpid()}")
        #: The name the coordinator assigned in the latest session.
        self.worker_id = self.requested_id
        self.connect_timeout = connect_timeout
        self.reconnect_attempts = reconnect_attempts
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        # Seeded jitter: deterministic for tests, stable-per-worker by
        # default so a fleet of restarting workers doesn't thunder.
        if backoff_seed is None:
            backoff_seed = zlib.crc32(self.requested_id.encode("utf-8"))
        self._backoff_rng = random.Random(backoff_seed)
        #: Applied to every freshly-connected socket (chaos injection).
        self.socket_wrapper = socket_wrapper
        self._sock: Optional[Any] = None
        self._send_lock = threading.Lock()
        self._records_sent = 0
        self._selfkill_after = int(os.environ.get(_SELFKILL_ENV, "0") or 0)

    # -- plumbing ----------------------------------------------------------

    def _connect(self) -> Any:
        """Dial the coordinator, retrying until ``connect_timeout`` —
        ``repro fleet join`` often races ``fleet serve`` coming up."""
        deadline = _time.monotonic() + self.connect_timeout
        while True:
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout)
                # The timeout bounds the CONNECT only; session recvs
                # block indefinitely (a busy coordinator may be slow
                # to answer, which must not read as worker death).
                sock.settimeout(None)
                if self.socket_wrapper is not None:
                    sock = self.socket_wrapper(sock)
                return sock
            except OSError:
                if _time.monotonic() >= deadline:
                    raise
                _time.sleep(0.1)

    def _send(self, message: Dict[str, Any]) -> None:
        assert self._sock is not None
        with self._send_lock:
            send_message(self._sock, message)

    def _recv(self) -> Dict[str, Any]:
        assert self._sock is not None
        message = recv_message(self._sock)
        if message is None:
            raise ConnectionClosed("coordinator closed the connection")
        if message["type"] == "error":
            raise ProtocolError(
                f"coordinator rejected us: {message.get('message')}")
        return message

    def _start_heartbeat(
            self, sock: Any, interval: float,
            stats: WorkerStats) -> "Tuple[threading.Event, threading.Thread]":
        """One session's keep-alive thread.  The socket is captured
        here, not read off ``self``, so a reconnect can never hand the
        old thread a new session's connection.

        Each beat carries the worker's progress counters plus a metrics
        registry snapshot, so the coordinator can expose live per-worker
        telemetry (``repro fleet status --json``).  Both fields are
        optional on the wire — an old coordinator ignores them.
        """
        stop = threading.Event()

        def loop() -> None:
            while not stop.wait(interval):
                beat = {
                    "type": "heartbeat",
                    "stats": {
                        "chunks": stats.chunks,
                        "records": self._records_sent,
                        "errors": stats.errors,
                        "reconnects": stats.reconnects,
                    },
                    "metrics": metrics().snapshot(),
                }
                try:
                    with self._send_lock:
                        send_message(sock, beat)
                except OSError:
                    return  # the session died; its reader will notice

        thread = threading.Thread(
            target=loop, daemon=True,
            name=f"fleet-heartbeat-{self.worker_id}")
        thread.start()
        return stop, thread

    def _backoff_delay(self, failure: int) -> float:
        """Exponential backoff with jitter in [0.5x, 1x] of the cap —
        never zero, so a dead coordinator isn't hammered."""
        cap = min(self.backoff_max,
                  self.backoff_base * (2 ** max(0, failure - 1)))
        return cap * (0.5 + 0.5 * self._backoff_rng.random())

    # -- the work ----------------------------------------------------------

    def _run_payload(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One spec dict -> the exact record a single-box
        ``Campaign.run(store=...)`` would append for it."""
        with _EXECUTION_LOCK:
            raw = run_scenario_dict_safe(payload)
        return make_record(payload, raw,
                           fingerprint=result_fingerprint(raw),
                           metrics=scenario_metrics(raw))

    def _run_chunk(self, chunk_id: int, specs: Any) -> None:
        if not isinstance(specs, list):
            raise ProtocolError("chunk message without a spec list")
        with span("fleet.chunk", chunk=chunk_id, specs=len(specs)):
            for payload in specs:
                record = self._run_payload(payload)
                self._send({"type": "record", "chunk": chunk_id,
                            "record": record})
                self._records_sent += 1
                metrics().counter("fleet.worker.records").inc()
                if 0 < self._selfkill_after <= self._records_sent:
                    _log.warning(
                        "fleet worker %s: self-kill test hook firing",
                        self.worker_id)
                    os.kill(os.getpid(), signal.SIGKILL)
            self._send({"type": "chunk_done", "chunk": chunk_id})
        metrics().counter("fleet.worker.chunks").inc()

    def _session(self, stats: WorkerStats) -> WorkerStats:
        """One connection's lifetime: hello, then the request loop
        until ``done``.  Raises a :data:`_RETRYABLE` error if the
        connection dies; ``run`` decides whether to come back."""
        self._sock = self._connect()
        heartbeat_stop: Optional[threading.Event] = None
        heartbeat: Optional[threading.Thread] = None
        try:
            self._send({"type": "hello", "worker": self.requested_id,
                        "protocol": PROTOCOL_VERSION,
                        "reconnects": stats.reconnects})
            welcome = self._recv()
            if welcome["type"] != "welcome":
                raise ProtocolError(
                    f"expected welcome, got {welcome['type']!r}")
            # The coordinator may have uniquified our name for this
            # session; the *requested* identity stays what it was.
            self.worker_id = welcome.get("worker", self.requested_id)
            stats.worker_id = self.worker_id
            interval = float(welcome.get("heartbeat", 5.0))
            heartbeat_stop, heartbeat = self._start_heartbeat(
                self._sock, max(0.05, interval), stats)
            while True:
                self._send({"type": "request"})
                reply = self._recv()
                kind = reply["type"]
                if kind == "done":
                    self._send({"type": "bye"})
                    stats.records = self._records_sent
                    return stats
                if kind == "wait":
                    _time.sleep(float(reply.get("seconds", 0.2)))
                    continue
                if kind != "chunk":
                    raise ProtocolError(
                        f"expected chunk/wait/done, got {kind!r}")
                chunk_id = reply.get("chunk")
                try:
                    self._run_chunk(chunk_id, reply.get("specs"))
                    stats.chunks += 1
                except (OSError, ProtocolError):
                    raise  # connection-level: nothing useful to report
                except Exception as exc:  # noqa: BLE001 - report, move on
                    # Infrastructure failure outside per-scenario fault
                    # isolation (record assembly, serialization); hand
                    # the chunk back for a retry elsewhere.
                    stats.errors += 1
                    self._send({"type": "chunk_error", "chunk": chunk_id,
                                "error": f"{type(exc).__name__}: {exc}"})
        finally:
            # Heartbeat first, socket second: the thread is joined
            # before the close, so it cannot send on a dead fd.
            if heartbeat_stop is not None:
                heartbeat_stop.set()
            if heartbeat is not None:
                heartbeat.join(timeout=2.0)
            sock, self._sock = self._sock, None
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass

    def run(self) -> WorkerStats:
        """Serve until the coordinator runs out of work, reconnecting
        through up to ``reconnect_attempts`` dropped sessions."""
        stats = WorkerStats(worker_id=self.requested_id)
        failures = 0
        while True:
            try:
                return self._session(stats)
            except _RETRYABLE as exc:
                failures += 1
                stats.reconnects = failures
                if failures > self.reconnect_attempts:
                    _log.error(
                        "fleet worker %s: giving up after %d lost "
                        "session(s): %s", self.requested_id, failures, exc)
                    raise
                delay = self._backoff_delay(failures)
                _log.warning(
                    "fleet worker %s: session lost (%s); reconnect "
                    "%d/%d in %.2fs", self.requested_id, exc, failures,
                    self.reconnect_attempts, delay)
                _time.sleep(delay)


def worker_main(host: str, port: int,
                worker_id: Optional[str] = None,
                connect_timeout: float = 10.0,
                reconnect_attempts: int = 5,
                backoff_base: float = 0.1,
                backoff_max: float = 5.0,
                backoff_seed: Optional[int] = None,
                socket_wrapper: "Optional[Callable[[Any], Any]]" = None,
                ) -> int:
    """Process/thread entry point (module-level so it pickles into
    ``multiprocessing`` children); returns an exit code."""
    maybe_enable_from_env()
    if socket_wrapper is None:
        from repro.fleet.chaos import schedule_from_env

        socket_wrapper = schedule_from_env(os.environ)
    try:
        stats = FleetWorker(host, port, worker_id=worker_id,
                            connect_timeout=connect_timeout,
                            reconnect_attempts=reconnect_attempts,
                            backoff_base=backoff_base,
                            backoff_max=backoff_max,
                            backoff_seed=backoff_seed,
                            socket_wrapper=socket_wrapper).run()
    except (OSError, SimulationError) as exc:
        _log.error("fleet worker failed: %s", exc)
        return 1
    _log.info("fleet worker %s finished: %d chunk(s), %d record(s), "
              "%d reconnect(s)",
              stats.worker_id, stats.chunks, stats.records,
              stats.reconnects)
    return 0
