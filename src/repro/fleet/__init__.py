"""The fleet subsystem: multi-box campaign fan-out.

PR 1 made experiments data (:mod:`repro.scenarios`), PR 3 made their
results durable (:mod:`repro.results`); this layer sits between them
and removes the last scale ceiling — one machine's cores.  A
:class:`FleetCoordinator` shards a sweep's ``(spec_hash, seed)`` work
into chunks and leases them to workers over a length-prefixed
JSON-over-TCP protocol (:mod:`~repro.fleet.protocol`); workers —
in-process threads, local processes, or ``repro fleet join`` clients
on other machines (:mod:`~repro.fleet.transport`) — stream records
back into per-worker shard stores; leases expire and chunks are
stolen from dead or stalled workers; and the shards merge into one
canonical :class:`~repro.results.store.ResultStore` that is
record-for-record what a single-box ``Campaign.run`` would have
written.

The failure story covers the coordinator itself: chunk-state
transitions are journalled to fsync'd JSONL next to the store
(:mod:`~repro.fleet.journal`), ``repro fleet serve --resume`` rebuilds
a crashed run from that journal re-ingesting surviving shards instead
of re-running them, workers reconnect through dropped sessions with
seeded backoff, and a deterministic chaos harness
(:mod:`~repro.fleet.chaos`) proves the digest survives all of it.
See ``docs/fleet.md`` for the full crash-recovery matrix.

Quickstart::

    from repro.fleet import FleetExecutor
    from repro.results import ResultStore
    from repro.scenarios import Campaign, generate_scenario

    campaign = Campaign.seed_sweep(generate_scenario, range(100))
    campaign.run(store=ResultStore("sweep"),
                 executor=FleetExecutor(workers=4,
                                        transport="multiprocessing"))

Or across machines::

    # box A
    repro fleet serve --store sweep --port 7654 --count 1000
    # boxes B, C, ...
    repro fleet join boxA:7654
"""

from repro.fleet.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    encode_frame,
    parse_address,
    recv_message,
    send_message,
)
from repro.fleet.journal import FleetJournal, default_journal_path
from repro.fleet.coordinator import (
    FleetCoordinator,
    FleetRunStats,
    resume_coordinator,
)
from repro.fleet.worker import FleetWorker, WorkerStats, worker_main
from repro.fleet.transport import (
    TRANSPORTS,
    InProcessTransport,
    MultiprocessTransport,
    TcpTransport,
    transport_from_name,
)
from repro.fleet.chaos import (
    ChaosSchedule,
    ChaosSocket,
    ChaosTransport,
    schedule_from_env,
)
from repro.fleet.executor import FleetExecutor, run_fleet_campaign

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ConnectionClosed",
    "encode_frame",
    "recv_message",
    "send_message",
    "parse_address",
    "FleetJournal",
    "default_journal_path",
    "FleetCoordinator",
    "FleetRunStats",
    "resume_coordinator",
    "FleetWorker",
    "WorkerStats",
    "worker_main",
    "TRANSPORTS",
    "InProcessTransport",
    "MultiprocessTransport",
    "TcpTransport",
    "transport_from_name",
    "ChaosSchedule",
    "ChaosSocket",
    "ChaosTransport",
    "schedule_from_env",
    "FleetExecutor",
    "run_fleet_campaign",
]
