"""Fleet protocol-overhead benchmark: the wire without the work.

A fleet run's wall time is simulation + coordination, and tuning the
coordination half (framing, per-record fsyncs into shard stores, lease
bookkeeping, the final shard merge) needs a measurement that excludes
the simulator entirely.  This harness runs the REAL coordinator and
REAL TCP workers speaking the real frame protocol
(hello/request/record/chunk_done/done/bye plus heartbeats) — but the
"scenario execution" is a deterministic record fabricator, so every
measured second is protocol + store overhead.

``repro fleet bench`` is the CLI face; :func:`run_protocol_bench` is
the library entry the benchmark suite calls.  Records are fabricated
deterministically from the seed, so repeated runs push identical bytes
and the merged store's digest is stable — which also makes the bench a
smoke test of the coordinator/store plumbing under both on-disk
formats (``store_format="jsonl"`` or ``"columnar"``).
"""

from __future__ import annotations

import hashlib
import shutil
import tempfile
import threading
import time as _time
from typing import Any, Dict, List, Optional

from repro.core.errors import ConfigurationError
from repro.fleet.coordinator import FleetCoordinator
from repro.fleet.protocol import encode_frame
from repro.fleet.worker import FleetWorker
from repro.results.records import canonical_json, make_record
from repro.results.store import ResultStore


def synthetic_payloads(count: int) -> List[Dict[str, Any]]:
    """``count`` tiny spec dicts, one per seed.  They are never run —
    the bench worker fabricates their records — but they flow through
    chunk planning, leases and the wire like real specs."""
    return [{"name": f"bench-{seed}", "seed": seed,
             "bench": True, "duration": 0.0}
            for seed in range(count)]


def fabricate_record(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic record the bench "runs" a payload into.

    Shapes match a real scenario record — flat rollup metrics, SLO
    verdicts inside the result, a fingerprint — so aggregation, CSV
    export and the columnar codec all exercise their real paths.
    """
    seed = payload.get("seed", 0)
    metrics = {
        "converged": True,
        "convergence_time": 1.0 + (seed % 97) * 0.01,
        "delivered_fraction": 1.0 - (seed % 13) * 0.002,
        "max_recovery_seconds": 0.5 + (seed % 41) * 0.02,
        "mean_recovery_seconds": 0.25 + (seed % 41) * 0.01,
        "control_messages": 100 + seed % 57,
        "control_bytes": 6400 + (seed % 57) * 64,
        "events_fired": 1000 + seed % 211,
        "recomputations": 3 + seed % 7,
        "wall_seconds": 0.0,
    }
    result = {
        "name": payload["name"],
        "seed": seed,
        "slos": [{"slo": "bench_delivered>=0.9", "status": "pass",
                  "observed": metrics["delivered_fraction"]}],
        "diagnostics": {},
    }
    fingerprint = hashlib.sha256(
        canonical_json({"payload": payload, "metrics": metrics})
        .encode()).hexdigest()[:16]
    return make_record(payload, result, fingerprint=fingerprint,
                       metrics=metrics)


class _BenchWorker(FleetWorker):
    """A fleet worker whose 'scenario run' is record fabrication.

    Everything else — connection, hello, leases, heartbeats, record
    streaming, chunk_done, the done/bye handshake — is the inherited
    real implementation, so the bytes on the wire are exactly a real
    worker's bytes.
    """

    def _run_payload(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return fabricate_record(payload)


def run_protocol_bench(
    records: int = 2000,
    workers: int = 2,
    chunk_size: Optional[int] = None,
    store_format: Optional[str] = None,
    store_path: Optional[str] = None,
    lease_timeout: float = 30.0,
) -> Dict[str, Any]:
    """Push ``records`` fabricated records through ``workers`` real
    TCP workers; returns the measurements as a flat dict.

    ``store_path=None`` merges into a temporary store that is deleted
    afterwards; give a path to keep (and inspect) the merged store.
    """
    if records <= 0:
        raise ConfigurationError(f"records must be > 0, got {records}")
    if workers <= 0:
        raise ConfigurationError(f"workers must be > 0, got {workers}")
    payloads = synthetic_payloads(records)
    # The wire cost is deterministic: every record frame's bytes are
    # known before the run, so B/record is exact, not sampled.
    wire_bytes = sum(
        len(encode_frame({"type": "record", "chunk": 0,
                          "record": fabricate_record(payload)}))
        for payload in payloads)

    tmp_root = None
    if store_path is None:
        tmp_root = tempfile.mkdtemp(prefix="repro-fleet-bench-")
        store_path = tmp_root + "/store"
    try:
        store = ResultStore(store_path, format=store_format)
        coordinator = FleetCoordinator(
            payloads, store, chunk_size=chunk_size, workers_hint=workers,
            lease_timeout=lease_timeout, host="127.0.0.1", port=0)
        coordinator.start()
        host, port = coordinator.address
        threads = []
        start = _time.perf_counter()
        try:
            for i in range(workers):
                worker = _BenchWorker(host, port,
                                      worker_id=f"bench-{i}")
                thread = threading.Thread(target=worker.run, daemon=True,
                                          name=f"fleet-bench-{i}")
                thread.start()
                threads.append(thread)
            coordinator.wait()
            wall = _time.perf_counter() - start
            coordinator.drain()
        finally:
            coordinator.stop()
        for thread in threads:
            thread.join(timeout=5.0)
        merge_start = _time.perf_counter()
        stats = coordinator.finish(transport="bench")
        merge_seconds = _time.perf_counter() - merge_start
        return {
            "records": records,
            "workers": workers,
            "chunk_size": stats.chunk_size,
            "chunks": stats.chunks,
            "store_format": store.storage_format,
            "wall_seconds": wall,
            "records_per_second": records / wall if wall > 0 else 0.0,
            "merge_seconds": merge_seconds,
            "merged": stats.merged,
            "records_ingested": stats.records_ingested,
            "duplicates_dropped": stats.duplicates_dropped,
            "reclaimed": stats.reclaimed,
            "wire_bytes": wire_bytes,
            "wire_bytes_per_record": wire_bytes / records,
            "store_digest": store.canonical_digest(),
        }
    finally:
        if tmp_root is not None:
            shutil.rmtree(tmp_root, ignore_errors=True)
