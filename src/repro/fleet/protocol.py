"""The fleet wire protocol: length-prefixed JSON frames over a socket.

Every message between a coordinator and a worker is one *frame*: a
4-byte big-endian unsigned length followed by that many bytes of
UTF-8 JSON encoding a dict with at least a ``"type"`` key.  The same
framing carries every transport — the in-process and multiprocessing
transports speak it over loopback TCP, and ``repro fleet join`` speaks
it across machines — so there is exactly one protocol to test and one
place (:func:`recv_message`) where hostile bytes are handled.

Robustness contract (pinned by the protocol fuzz tests): a peer that
sends garbage — a truncated header, a length prefix pointing past EOF,
an absurd length, non-JSON bytes, JSON that is not an object, an
object without a ``type`` — produces a :class:`ProtocolError` in the
reader, never an unhandled crash.  A clean EOF *between* frames reads
as ``None`` (the peer hung up), which is how worker death is detected.

Message vocabulary (informal; unknown types are rejected by the
coordinator, tolerated-and-ignored by workers for forward compat):

worker -> coordinator
    ``hello``        {worker, protocol,   introduce + version check
                      reconnects?}        (reconnects: sessions this
                                          worker lost before this one)
    ``request``      {}                   ask for a chunk lease
    ``record``       {chunk, record}      one finished scenario record
    ``chunk_done``   {chunk}              lease completed
    ``chunk_error``  {chunk, error}       lease failed outside scenario
                                          isolation (re-queued)
    ``heartbeat``    {stats?, metrics?}   lease keep-alive; optionally
                                          carries progress counters and
                                          a metrics registry snapshot
                                          (see :mod:`repro.obs`) — both
                                          type-guarded, never trusted
    ``status``       {}                   snapshot request (monitoring
                                          clients send this without hello)
    ``bye``          {}                   clean goodbye

coordinator -> worker
    ``welcome``      {worker, chunks}     hello accepted (worker id may
                                          have been uniquified)
    ``chunk``        {chunk, specs}       a lease: run these spec dicts
    ``wait``         {seconds}            nothing leasable now; poll again
    ``done``         {}                   every chunk is finished
    ``status_reply`` {status}             snapshot
    ``error``        {message}            protocol violation (then close)
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

from repro.core.errors import SimulationError

#: Bumped on any incompatible change to the message vocabulary.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's payload.  A record for even a huge
#: scenario is a few hundred KB; anything near this limit is a corrupt
#: or hostile length prefix, not data.
MAX_FRAME_BYTES = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(SimulationError):
    """The peer sent bytes that are not a well-formed fleet frame."""


class ConnectionClosed(ProtocolError):
    """The peer vanished mid-conversation: EOF inside a frame, or a
    hangup where a reply was owed.

    Distinguished from the base class because the two call for
    different reactions: a :class:`ProtocolError` proper is a semantic
    rejection (version mismatch, malformed message) that a retry would
    only repeat, while a :class:`ConnectionClosed` is the network (or
    the peer's process) dying — exactly what a worker's
    reconnect-with-backoff loop is for.
    """


def encode_frame(message: Dict[str, Any]) -> bytes:
    """One message -> its wire bytes (header + canonical JSON)."""
    payload = json.dumps(message, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit")
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Frame payload bytes -> validated message dict."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"frame payload is not JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload is {type(message).__name__}, expected object")
    if not isinstance(message.get("type"), str):
        raise ProtocolError("frame payload has no string 'type' field")
    return message


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on EOF *before* the first
    byte, :class:`ProtocolError` on EOF in the middle (a torn frame)."""
    chunks = []
    remaining = count
    while remaining > 0:
        try:
            chunk = sock.recv(min(remaining, 1 << 16))
        except (ConnectionResetError, BrokenPipeError):
            chunk = b""
        if not chunk:
            if remaining == count:
                return None
            raise ConnectionClosed(
                f"connection closed mid-frame ({count - remaining}/{count} "
                f"bytes read)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket,
                 max_bytes: int = MAX_FRAME_BYTES) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF, :class:`ProtocolError`
    on anything malformed.  This is the single choke point where bytes
    from the network become trusted structure."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise ProtocolError(
            f"frame length {length} exceeds the {max_bytes}-byte limit "
            f"(corrupt or hostile header)")
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ConnectionClosed("connection closed between header and payload")
    return decode_payload(payload)


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one frame (callers serialize concurrent senders)."""
    sock.sendall(encode_frame(message))


def parse_address(raw: str) -> "tuple[str, int]":
    """``host:port`` -> (host, port); the CLI's address syntax."""
    host, sep, port = raw.rpartition(":")
    if not sep or not host:
        raise ProtocolError(f"bad fleet address {raw!r}; expected host:port")
    try:
        return host, int(port)
    except ValueError:
        raise ProtocolError(
            f"bad fleet address {raw!r}; port must be an integer") from None
