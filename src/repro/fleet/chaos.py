"""Deterministic network fault injection for the fleet protocol.

The invariant every fleet feature rests on — fleet store digest ==
single-box store digest, bit for bit — is only believable if it holds
while the network misbehaves.  This module makes the misbehavior
*reproducible*: a :class:`ChaosSchedule` is a seeded plan of faults
(abrupt disconnects, delayed and partially-delivered frames, garbage
bytes), and a :class:`ChaosSocket` applies that plan to a real
socket's sends, so a test or a CI job can say "seed 7 drops the third
frame mid-length-prefix" and get exactly that, every run.

Design constraints that keep the invariant *checkable*:

* Chaos is injected only on the **send** path.  Corrupting received
  bytes would require inventing data the peer never sent; killing the
  connection (which a send-side disconnect does) already exercises
  every receive-side failure the real world produces — EOF between
  frames, EOF mid-header, EOF mid-payload.
* Chaos can delay, tear, or destroy bytes — it can never *forge* a
  valid record.  Garbage either fails framing or JSON validation at
  the coordinator, which drops the connection; the lease/reclaim/dedup
  machinery then has to carry the run, which is the point.
* Every schedule has a finite fault budget (``max_faults``).  Once
  spent, the network is clean — so any run with reconnection and
  lease reclaim terminates, and the digest assertion is reachable for
  *every* seed, not just lucky ones.

``REPRO_FLEET_CHAOS_SEED`` (and optional ``REPRO_FLEET_CHAOS_FAULTS``,
``REPRO_FLEET_CHAOS_RATE``) in a worker's environment wraps its
coordinator connections in a schedule — how ``repro fleet join``
workers in the CI chaos job misbehave without code changes.
"""

from __future__ import annotations

import random
import socket
import time as _time
from typing import Any, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.fleet.transport import InProcessTransport

#: Schedule actions, as (kind, argument) pairs:
#:   ("pass", None)        deliver the frame untouched
#:   ("delay", seconds)    deliver late, in one piece
#:   ("split", cut)        deliver in two writes with a pause between
#:   ("disconnect", cut)   deliver ``cut`` bytes, then close the socket
#:   ("garbage", nbytes)   send ``nbytes`` of seeded noise, then close
Action = Tuple[str, Optional[float]]

#: Only these spend the fault budget; delays and splits are benign
#: (any TCP stack does both uninvited) and may continue forever.
_BUDGETED = ("disconnect", "garbage")

_FAULT_KINDS = ("delay", "split", "disconnect", "garbage")


class ChaosSchedule:
    """A seeded, finite plan of send-path faults.

    One schedule serves one worker across all its reconnections (the
    RNG stream continues through a reconnect, so the whole session's
    fault sequence is a pure function of the seed).  It doubles as the
    worker's ``socket_wrapper``: calling it wraps a freshly-connected
    socket in a :class:`ChaosSocket` sharing this plan.

    ``actions`` replaces the RNG with an explicit script — how the
    protocol tests force "disconnect after 2 bytes of the length
    prefix" instead of waiting for a seed to roll it.
    """

    def __init__(self, seed: int = 0, fault_rate: float = 0.2,
                 max_faults: Optional[int] = 8,
                 delay_max: float = 0.02, garbage_max: int = 64,
                 actions: "Optional[List[Action]]" = None):
        if not 0.0 <= fault_rate <= 1.0:
            raise ConfigurationError(
                f"fault_rate must be in [0, 1], got {fault_rate}")
        self.seed = seed
        self.fault_rate = fault_rate
        self.max_faults = max_faults
        self.delay_max = delay_max
        self.garbage_max = garbage_max
        self._rng = random.Random(seed)
        self._scripted = list(actions) if actions is not None else None
        self.faults_injected = 0
        self.frames_seen = 0
        self.connections = 0

    def exhausted(self) -> bool:
        return (self.max_faults is not None
                and self.faults_injected >= self.max_faults)

    def next_action(self, nbytes: int) -> Action:
        """Decide the fate of one outgoing frame of ``nbytes``."""
        self.frames_seen += 1
        if self._scripted is not None:
            action = (self._scripted.pop(0) if self._scripted
                      else ("pass", None))
            if action[0] in _BUDGETED:
                self.faults_injected += 1
            return action
        if nbytes < 2 or self._rng.random() >= self.fault_rate:
            return ("pass", None)
        kind = self._rng.choice(_FAULT_KINDS)
        if kind in _BUDGETED and self.exhausted():
            return ("pass", None)
        if kind == "delay":
            return ("delay", self._rng.uniform(0.0, self.delay_max))
        if kind == "split":
            return ("split", self._rng.randrange(1, nbytes))
        self.faults_injected += 1
        if kind == "disconnect":
            # cut in [0, nbytes): 0..3 tears the length prefix itself,
            # anything later tears the payload.
            return ("disconnect", self._rng.randrange(0, nbytes))
        return ("garbage", self._rng.randrange(1, self.garbage_max + 1))

    def garbage(self, nbytes: int) -> bytes:
        return bytes(self._rng.randrange(256) for _ in range(int(nbytes)))

    def wrap(self, sock: socket.socket) -> "ChaosSocket":
        self.connections += 1
        return ChaosSocket(sock, self)

    #: A schedule *is* a worker ``socket_wrapper``.
    __call__ = wrap


class ChaosSocket:
    """A socket proxy whose ``sendall`` obeys a :class:`ChaosSchedule`.

    Receives, timeouts, and close pass straight through — the receive
    side sees chaos only as its natural consequence (a dead
    connection), never as fabricated bytes.  Sends are already
    serialized by the worker's send lock, so the schedule's RNG is
    touched by one thread at a time and the fault sequence stays
    deterministic.
    """

    def __init__(self, sock: socket.socket, schedule: ChaosSchedule):
        self._sock = sock
        self._schedule = schedule

    def sendall(self, data: bytes) -> None:
        kind, arg = self._schedule.next_action(len(data))
        if kind == "pass":
            self._sock.sendall(data)
        elif kind == "delay":
            _time.sleep(float(arg))
            self._sock.sendall(data)
        elif kind == "split":
            cut = int(arg)
            self._sock.sendall(data[:cut])
            _time.sleep(0.002)
            self._sock.sendall(data[cut:])
        elif kind == "disconnect":
            cut = int(arg)
            if cut:
                try:
                    self._sock.sendall(data[:cut])
                except OSError:
                    pass  # already dying; the close below is the point
            self._sock.close()
            raise ConnectionResetError(
                f"chaos: injected disconnect after {cut}/{len(data)} bytes")
        elif kind == "garbage":
            try:
                self._sock.sendall(self._schedule.garbage(int(arg)))
            except OSError:
                pass
            self._sock.close()
            raise ConnectionResetError(
                f"chaos: injected {int(arg)} garbage bytes, then hung up")
        else:  # pragma: no cover - schedule vocabulary is closed
            raise ConfigurationError(f"unknown chaos action {kind!r}")

    # Everything else is the real socket's business.
    def recv(self, *args: Any, **kwargs: Any) -> bytes:
        return self._sock.recv(*args, **kwargs)

    def settimeout(self, value: "Optional[float]") -> None:
        self._sock.settimeout(value)

    def close(self) -> None:
        self._sock.close()

    def fileno(self) -> int:
        return self._sock.fileno()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._sock, name)


def schedule_from_env(environ: Any) -> "Optional[ChaosSchedule]":
    """Build a schedule from ``REPRO_FLEET_CHAOS_*`` variables, or
    None when chaos is not requested — the hook ``worker_main`` uses
    so external (``repro fleet join``) workers can misbehave on cue."""
    raw_seed = environ.get("REPRO_FLEET_CHAOS_SEED")
    if raw_seed in (None, ""):
        return None
    return ChaosSchedule(
        seed=int(raw_seed),
        fault_rate=float(environ.get("REPRO_FLEET_CHAOS_RATE", "0.2")),
        max_faults=int(environ.get("REPRO_FLEET_CHAOS_FAULTS", "8")),
    )


class ChaosTransport(InProcessTransport):
    """In-process workers whose coordinator connections misbehave.

    Each worker gets its own :class:`ChaosSchedule` (seed derived from
    the transport seed and the worker index) plus generous reconnect
    settings, so the run as a whole is deterministic per seed and
    guaranteed to terminate once every budget is spent.  Drop it in as
    ``FleetExecutor(transport=ChaosTransport(seed=7))``.
    """

    name = "chaos"

    def __init__(self, seed: int = 0, fault_rate: float = 0.2,
                 max_faults: int = 8,
                 reconnect_attempts: int = 64,
                 backoff_base: float = 0.01, backoff_max: float = 0.25):
        super().__init__()
        self.seed = seed
        self.fault_rate = fault_rate
        self.max_faults = max_faults
        self.reconnect_attempts = reconnect_attempts
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.schedules: List[ChaosSchedule] = []

    def _options_for(self, index: int) -> Any:
        schedule = ChaosSchedule(
            # A large odd stride keeps per-worker streams disjoint
            # without the seeds colliding for small inputs.
            seed=self.seed * 1_000_003 + index,
            fault_rate=self.fault_rate, max_faults=self.max_faults)
        self.schedules.append(schedule)
        return {
            "socket_wrapper": schedule,
            "reconnect_attempts": self.reconnect_attempts,
            "backoff_base": self.backoff_base,
            "backoff_max": self.backoff_max,
            "backoff_seed": self.seed * 7_919 + index,
        }

    def faults_injected(self) -> int:
        """Total budgeted faults the run actually suffered — tests
        assert this is non-zero, or the chaos test isn't testing."""
        return sum(s.faults_injected for s in self.schedules)
