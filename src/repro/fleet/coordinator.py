"""The fleet coordinator: leases chunks out, herds the records home.

One coordinator owns one campaign's worth of pending work.  It plans
the sweep's spec payloads into contiguous chunks (see
:func:`repro.scenarios.campaign.plan_chunks`), serves them to workers
over the frame protocol, and streams every returned record into a
per-worker *shard* :class:`~repro.results.store.ResultStore` under
``<store>/shards/``.  When every chunk is resolved it merges the
shards into the target store in the sweep's canonical spec order — so
a fleet run's store is record-for-record identical to a single-box
``Campaign.run`` of the same specs.

Failure model (work stealing):

* a worker's TCP connection dying (SIGKILL, OOM, network) immediately
  reclaims its leased chunks and re-queues them for the next
  ``request``;
* a worker that stays connected but stops making progress loses its
  lease after ``lease_timeout`` seconds without a frame (records and
  heartbeats both refresh it) — the monitor thread re-queues the
  chunk, and late records from the zombie are deduplicated away;
* a worker reporting ``chunk_error`` (infrastructure failure outside
  the per-scenario fault isolation) gets the chunk re-queued, up to
  ``max_chunk_attempts`` per chunk before it is marked failed.

Duplicate completions are inevitable under reclaim (the original
worker may finish after the steal); the coordinator dedups record
ingest by ``(spec_hash, seed)``.  Records are deterministic given a
spec, so which copy survives does not matter — except that a healthy
record always supersedes an error record, both at ingest and at
merge, so a flaky worker cannot poison a key another worker completed.

The coordinator's own death is covered too: chunk-state transitions
are journalled (see :mod:`repro.fleet.journal`), and
:func:`resume_coordinator` rebuilds a coordinator from the journal
that re-ingests surviving shards instead of re-running them.  A worker
that keeps reporting ``chunk_error`` is *quarantined* — its next
report and any re-hello are rejected — so one broken installation
cannot spend every chunk's attempt budget.
"""

from __future__ import annotations

import logging
import os
import shutil
import signal
import socket
import threading
import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.errors import ConfigurationError
from repro.results.records import record_error, spec_hash
from repro.results.store import (
    ResultStore,
    SHARDS_DIR,
    list_shards,
    shard_store_name,
)
from repro.fleet.journal import FleetJournal, default_journal_path
from repro.obs.metrics import metrics
from repro.obs.spans import span
from repro.fleet.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.scenarios.campaign import WorkChunk, plan_chunks

_log = logging.getLogger("repro.fleet")

_PENDING, _LEASED, _DONE, _FAILED = "pending", "leased", "done", "failed"

#: Test hook: SIGKILL the coordinator's own process after ingesting
#: this many records — how the crash-recovery tests die at an
#: arbitrary, reproducible point with no cooperation from teardown.
_COORD_SELFKILL_ENV = "REPRO_FLEET_COORD_SELFKILL_AFTER"


@dataclass
class _ChunkState:
    chunk: WorkChunk
    status: str = _PENDING
    worker: Optional[str] = None
    deadline: float = 0.0
    attempts: int = 0


@dataclass
class FleetRunStats:
    """What one fleet run did, beyond the records it produced."""

    chunks: int = 0
    chunk_size: int = 0
    workers: List[str] = field(default_factory=list)
    reclaimed: int = 0            # leases stolen back (death or expiry)
    failed_chunks: int = 0        # chunks that exhausted their attempts
    records_ingested: int = 0     # accepted into shard stores
    duplicates_dropped: int = 0   # re-runs of already-ingested keys
    merged: int = 0               # records appended to the final store
    unfinished: int = 0           # specs never completed (failed chunks)
    failed: int = 0               # merged records that are error records
    slo_failures: int = 0         # non-passing verdicts in merged records
    resumed: bool = False         # this run continued a crashed one
    reingested_records: int = 0   # salvaged from shards, not re-run
    reingested_chunks: int = 0    # chunks fully covered by salvage
    requeued_lost: int = 0        # chunks the crash genuinely lost
    quarantined: List[str] = field(default_factory=list)
    stopped_cleanly: bool = True  # every server thread died on stop()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "chunks": self.chunks, "chunk_size": self.chunk_size,
            "workers": list(self.workers), "reclaimed": self.reclaimed,
            "failed_chunks": self.failed_chunks,
            "records_ingested": self.records_ingested,
            "duplicates_dropped": self.duplicates_dropped,
            "merged": self.merged, "unfinished": self.unfinished,
            "failed": self.failed, "slo_failures": self.slo_failures,
            "resumed": self.resumed,
            "reingested_records": self.reingested_records,
            "reingested_chunks": self.reingested_chunks,
            "requeued_lost": self.requeued_lost,
            "quarantined": list(self.quarantined),
            "stopped_cleanly": self.stopped_cleanly,
        }


class FleetCoordinator:
    """Serve one campaign's chunks to fleet workers over TCP."""

    def __init__(
        self,
        payloads: List[Dict[str, Any]],
        store: ResultStore,
        chunk_size: Optional[int] = None,
        workers_hint: int = 1,
        lease_timeout: float = 30.0,
        max_chunk_attempts: int = 5,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_hint: float = 0.2,
        journal: Union[bool, str] = True,
        chunks: Optional[List[WorkChunk]] = None,
        quarantine_after: int = 3,
        resume: bool = False,
    ):
        if store.readonly:
            raise ConfigurationError("fleet target store is read-only")
        if lease_timeout <= 0:
            raise ConfigurationError(
                f"lease_timeout must be > 0, got {lease_timeout}")
        if quarantine_after < 1:
            raise ConfigurationError(
                f"quarantine_after must be >= 1, got {quarantine_after}")
        self.store = store
        self.lease_timeout = lease_timeout
        self.max_chunk_attempts = max_chunk_attempts
        self.quarantine_after = quarantine_after
        self.poll_hint = poll_hint
        self._host_req, self._port_req = host, port
        # Canonical order: the sweep's spec order, which is also the
        # append order of a single-box run — merge preserves it.
        self._order_keys: List[Tuple[str, int]] = [
            (spec_hash(payload), payload.get("seed", 0))
            for payload in payloads]
        self._valid_keys = set(self._order_keys)
        # An explicit chunk list (the resume path replays the crashed
        # run's exact plan) bypasses planning; chunking must not drift
        # between the original run and its resume.
        if chunks is None:
            chunks = plan_chunks(payloads, chunk_size=chunk_size,
                                 workers=workers_hint)
        self.stats = FleetRunStats(
            chunks=len(chunks),
            chunk_size=max((len(c.payloads) for c in chunks), default=0),
            resumed=resume)
        self._chunks: Dict[int, _ChunkState] = {
            c.chunk_id: _ChunkState(chunk=c) for c in chunks}
        self._queue = deque(sorted(self._chunks))
        self._seen: Dict[Tuple[str, int], bool] = {}   # key -> is_error
        # worker -> chunk ids it currently leases: keeps lease touch/
        # expiry scans proportional to live leases, not total chunks.
        self._worker_leases: Dict[str, set] = {}
        self._shards: Dict[str, ResultStore] = {}
        self._worker_info: Dict[str, Dict[str, Any]] = {}
        self._worker_chunk_errors: Dict[str, int] = {}
        self._quarantined: set = set()
        self._connected: set = set()
        self._lock = threading.RLock()
        self._done = threading.Event()
        self._stopping = threading.Event()
        self._server: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._clients: List[socket.socket] = []
        self._resume = resume
        # journal=True -> the default path next to the store;
        # a string -> that path; False -> run without crash durability.
        if journal is True:
            self._journal_path: Optional[str] = default_journal_path(
                store.path)
        elif journal:
            self._journal_path = str(journal)
        else:
            self._journal_path = None
        self._journal: Optional[FleetJournal] = None
        self._selfkill_after = int(
            os.environ.get(_COORD_SELFKILL_ENV, "0") or 0)
        if not self._chunks:
            self._done.set()

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise ConfigurationError("coordinator is not started")
        return self._server.getsockname()[:2]

    def _journal_event(self, event: str, **fields: Any) -> None:
        """Best-effort durable logging: a journal that stops accepting
        writes (disk full, volume gone) degrades the run to its
        pre-journal behavior instead of killing it — the records
        themselves are still safe in the shard stores."""
        journal = self._journal
        if journal is None:
            return
        try:
            journal.append(event, **fields)
        except OSError as exc:
            _log.error("fleet: journal write failed (%s); disabling "
                       "crash durability for this run", exc)
            self._journal = None
            try:
                journal.close()
            except OSError:
                pass

    def start(self) -> "FleetCoordinator":
        if not self._resume:
            # A crashed fleet run can leave unmerged shards behind;
            # their keys would collide with a *fresh* run's re-executed
            # specs, so the slate is wiped.  A resume does the exact
            # opposite: the surviving shards are the salvage it came
            # back for (see resume_coordinator).
            shards_root = os.path.join(self.store.path, SHARDS_DIR)
            if os.path.isdir(shards_root):
                _log.warning("fleet: discarding stale shards in %s",
                             shards_root)
                shutil.rmtree(shards_root, ignore_errors=True)
        if self._journal_path is not None:
            # Fresh runs truncate any previous journal; resumes append
            # to the crashed run's log so the full history survives.
            self._journal = FleetJournal(self._journal_path,
                                         fresh=not self._resume)
            if self._resume:
                self._journal_event(
                    "resume",
                    requeued=self.stats.requeued_lost,
                    reingested_records=self.stats.reingested_records,
                    reingested_chunks=self.stats.reingested_chunks)
            else:
                # The plan is the journal's one load-bearing line: it
                # carries the exact chunk list (ids + spec payloads),
                # so a resume rebuilds an identical coordinator with
                # no generator flags to re-supply.  Written first,
                # before any worker can connect — a journal that
                # exists but lacks a plan was torn at birth and is
                # correctly refused by resume.
                self._journal_event(
                    "plan",
                    store=self.store.path,
                    store_format=self.store.storage_format,
                    lease_timeout=self.lease_timeout,
                    max_chunk_attempts=self.max_chunk_attempts,
                    chunks=[{"chunk": chunk_id,
                             "specs": self._chunks[chunk_id].chunk.payloads}
                            for chunk_id in sorted(self._chunks)])
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self._host_req, self._port_req))
        server.listen(64)
        # Accept with a timeout: a blocked accept() is not reliably
        # woken by close() from another thread, and stop() must not
        # hang on it.
        server.settimeout(0.25)
        self._server = server
        for target in (self._accept_loop, self._monitor_loop):
            thread = threading.Thread(target=target, daemon=True,
                                      name=f"fleet-{target.__name__}")
            thread.start()
            self._threads.append(thread)
        _log.info("fleet coordinator serving %d chunk(s) on %s:%d",
                  len(self._chunks), *self.address)
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every chunk is resolved (done or failed)."""
        return self._done.wait(timeout)

    def drain(self, timeout: float = 5.0) -> None:
        """Give connected workers a moment to hear ``done`` and hang
        up cleanly before :meth:`stop` slams the sockets — otherwise a
        worker blocked on its next ``request`` reads the close as a
        coordinator crash and exits non-zero."""
        deadline = _time.monotonic() + timeout
        while _time.monotonic() < deadline:
            with self._lock:
                if not self._connected:
                    return
            _time.sleep(0.05)

    def stop(self) -> None:
        """Tear down the sockets and threads (idempotent).  A thread
        that outlives its 2s join is named in the log and flips
        ``stats.stopped_cleanly`` — a silent leak here is how a "done"
        process ends up wedged in atexit or holding the port."""
        self._stopping.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        with self._lock:
            clients = list(self._clients)
        for sock in clients:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        current = threading.current_thread()
        leaked = []
        for thread in list(self._threads):
            if thread is current:
                continue
            thread.join(timeout=2.0)
            if thread.is_alive():
                leaked.append(thread.name)
        if leaked:
            self.stats.stopped_cleanly = False
            _log.error("fleet: %d thread(s) failed to stop within 2s: %s",
                       len(leaked), ", ".join(sorted(leaked)))

    # -- server loops ------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._server is not None
        while not self._stopping.is_set():
            try:
                sock, addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            sock.settimeout(None)  # workers block on recv indefinitely
            with self._lock:
                self._clients.append(sock)
            thread = threading.Thread(target=self._serve_client,
                                      args=(sock, addr), daemon=True,
                                      name=f"fleet-client-{addr[1]}")
            thread.start()
            self._threads.append(thread)

    def _monitor_loop(self) -> None:
        tick = max(0.05, self.lease_timeout / 5.0)
        while not self._stopping.is_set():
            if self._stopping.wait(tick):
                return
            with self._lock:
                self._reclaim_expired_locked(_time.monotonic())

    def _serve_client(self, sock: socket.socket,
                      addr: Tuple[str, int]) -> None:
        """One connection's read loop.  Garbage in -> a best-effort
        ``error`` frame and a closed socket, never a coordinator
        crash; the dropped worker's leases are reclaimed."""
        worker: Optional[str] = None
        try:
            while True:
                message = recv_message(sock)
                if message is None or message["type"] == "bye":
                    return
                worker = self._dispatch(sock, message, worker)
        except ProtocolError as exc:
            _log.warning("fleet: dropping %s:%d (%s)", addr[0], addr[1], exc)
            try:
                send_message(sock, {"type": "error", "message": str(exc)})
            except OSError:
                pass
        except OSError:
            pass  # peer vanished mid-write; disconnect handling below
        except Exception:  # noqa: BLE001 - the no-crash contract
            # Hostile input must never take a serving thread down
            # silently; anything the dispatchers didn't classify is
            # logged and treated like a protocol violation.
            _log.exception("fleet: unexpected error serving %s:%d; "
                           "dropping the connection", addr[0], addr[1])
            try:
                send_message(sock, {"type": "error",
                                    "message": "internal coordinator error"})
            except OSError:
                pass
        finally:
            if worker is not None:
                self._on_disconnect(worker)
            with self._lock:
                if sock in self._clients:
                    self._clients.remove(sock)
            try:
                sock.close()
            except OSError:
                pass

    # -- message dispatch --------------------------------------------------

    def _dispatch(self, sock: socket.socket, message: Dict[str, Any],
                  worker: Optional[str]) -> Optional[str]:
        kind = message["type"]
        if kind == "status":
            send_message(sock, {"type": "status_reply",
                                "status": self.status()})
            return worker
        if kind == "hello":
            if worker is not None:
                # A second hello would register a phantom worker the
                # disconnect cleanup never removes.
                raise ProtocolError("repeated hello on one connection")
            return self._on_hello(sock, message)
        if worker is None:
            raise ProtocolError(f"{kind!r} before hello")
        with self._lock:
            info = self._worker_info.get(worker)
            if info is not None:
                info["last_seen"] = _time.monotonic()
        if kind == "request":
            self._on_request(sock, worker)
        elif kind == "record":
            self._on_record(worker, message)
        elif kind == "chunk_done":
            self._on_chunk_done(worker, message)
        elif kind == "chunk_error":
            self._on_chunk_error(worker, message)
        elif kind == "heartbeat":
            self._on_heartbeat(worker, message)
        else:
            raise ProtocolError(f"unknown message type {kind!r}")
        return worker

    #: Heartbeat metric snapshots retained per worker (newest last).
    METRICS_SERIES_CAP = 60

    def _on_heartbeat(self, worker: str, message: Dict[str, Any]) -> None:
        """Keep-alive, plus the optional telemetry payload.

        Workers since PR 9 attach progress counters (``stats``) and a
        metrics registry snapshot (``metrics``) to every beat; both
        fields are optional on the wire and type-guarded here — a
        hostile or stale peer degrades to a plain keep-alive.
        """
        self._touch_leases(worker)
        stats = message.get("stats")
        snap = message.get("metrics")
        with self._lock:
            info = self._worker_info.get(worker)
            if info is None:
                return
            if isinstance(stats, dict):
                progress = info.setdefault("worker_stats", {})
                for key in ("chunks", "records", "errors", "reconnects"):
                    value = stats.get(key)
                    if (isinstance(value, (int, float))
                            and not isinstance(value, bool)):
                        progress[key] = value
            if isinstance(snap, dict):
                info["metrics"] = snap
                series = info.setdefault("metrics_series", [])
                series.append(snap)
                del series[:-self.METRICS_SERIES_CAP]

    def _on_hello(self, sock: socket.socket,
                  message: Dict[str, Any]) -> str:
        if message.get("protocol") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: coordinator speaks "
                f"{PROTOCOL_VERSION}, worker sent "
                f"{message.get('protocol')!r}")
        requested = message.get("worker")
        if not isinstance(requested, str) or not requested:
            requested = "worker"
        with self._lock:
            if requested in self._quarantined:
                # A semantic rejection, not a connection hiccup: the
                # worker's reconnect loop treats it as fatal, which is
                # the point — a quarantined installation must not
                # cycle back in under backoff.
                raise ProtocolError(
                    f"worker {requested!r} is quarantined after repeated "
                    f"chunk errors; restart it under a new identity")
            # Uniquify on the SANITIZED shard name too: ids like
            # 'w:1' and 'w;1' differ raw but map to the same shard
            # directory, and two live workers must never share one
            # (concurrent appends would interleave records).
            taken_shards = {shard_store_name(name)
                            for name in self._connected}
            worker = requested
            suffix = 2
            while (worker in self._connected
                   or shard_store_name(worker) in taken_shards):
                worker = f"{requested}~{suffix}"
                suffix += 1
            self._connected.add(worker)
            reconnects = message.get("reconnects")
            if isinstance(reconnects, bool) or not isinstance(
                    reconnects, int):
                reconnects = 0
            self._worker_info[worker] = {
                "records": 0, "chunks_done": 0,
                "reconnects": reconnects,
                "last_seen": _time.monotonic(),
            }
            if worker not in self.stats.workers:
                self.stats.workers.append(worker)
        _log.info("fleet: worker %s joined", worker)
        send_message(sock, {"type": "welcome", "worker": worker,
                            "chunks": len(self._chunks),
                            "heartbeat": self.lease_timeout / 3.0})
        return worker

    def _on_request(self, sock: socket.socket, worker: str) -> None:
        now = _time.monotonic()
        leased: Optional[Tuple[int, int]] = None
        with self._lock:
            self._reclaim_expired_locked(now)
            if self._queue:
                chunk_id = self._queue.popleft()
                state = self._chunks[chunk_id]
                state.status = _LEASED
                state.worker = worker
                state.deadline = now + self.lease_timeout
                state.attempts += 1
                self._worker_leases.setdefault(worker, set()).add(chunk_id)
                leased = (chunk_id, state.attempts)
                reply = {"type": "chunk", "chunk": chunk_id,
                         "specs": state.chunk.payloads}
            elif self._done.is_set():
                reply = {"type": "done"}
            else:
                reply = {"type": "wait", "seconds": self.poll_hint}
        if leased is not None:
            # Journalled before the chunk frame goes out: the journal
            # may claim a lease the worker never heard of (harmless —
            # resume re-derives coverage from disk), but never the
            # reverse.
            self._journal_event("lease", chunk=leased[0], worker=worker,
                                attempts=leased[1])
        send_message(sock, reply)

    def _on_record(self, worker: str, message: Dict[str, Any]) -> None:
        record = message.get("record")
        if not isinstance(record, dict):
            raise ProtocolError("record message without a record object")
        try:
            key = (record["spec_hash"], record["seed"])
        except KeyError as exc:
            raise ProtocolError(f"record missing {exc}") from None
        if not isinstance(key[0], str) or not isinstance(key[1], int):
            raise ProtocolError("record key is not (str spec_hash, int seed)")
        if key not in self._valid_keys:
            # Not part of this sweep: a worker built against different
            # spec code (mismatched hashing) or a hostile peer.  Either
            # way it must not leak into the canonical store.
            raise ProtocolError(
                f"record key {key} is not in this sweep's work list")
        is_error = record_error(record) is not None
        with self._lock:
            self._touch_leases_locked(worker)
            if key in self._seen and not (self._seen[key] and not is_error):
                # Duplicate from a reclaimed-but-alive worker; a healthy
                # record is only re-admitted over a previous error one.
                self.stats.duplicates_dropped += 1
                return
            self._seen[key] = is_error
            shard = self._shards.get(worker)
            new_shard = shard is None
            if shard is None:
                # Shards share the target store's format so the merge
                # can move whole segments instead of records.
                shard = ResultStore(
                    os.path.join(self.store.path, SHARDS_DIR,
                                 shard_store_name(worker)),
                    format=self.store.storage_format)
                self._shards[worker] = shard
        if new_shard:
            self._journal_event("shard", worker=worker, path=shard.path)
        # The fsync-bearing append happens OUTSIDE the global lock: a
        # shard is written only by its own worker's connection thread,
        # and serializing every worker's disk flush behind one lock
        # would also stall the heartbeat/lease handling that shares it.
        try:
            shard.append(record, replace=key in shard)
        except Exception:
            with self._lock:
                # Release the claim so another worker can land the key
                # (unless someone already upgraded it meanwhile).
                if self._seen.get(key) == is_error:
                    del self._seen[key]
            raise
        with self._lock:
            self.stats.records_ingested += 1
            ingested = self.stats.records_ingested
            info = self._worker_info.get(worker)
            if info is not None:
                info["records"] += 1
        if 0 < self._selfkill_after <= ingested:
            # The record IS durable (the shard append fsync'd it);
            # everything volatile — lease table, dedup map, sockets —
            # dies right here.  Resume has to rebuild it all from the
            # journal plus the shards.
            _log.warning("fleet: coordinator self-kill test hook firing "
                         "after %d record(s)", ingested)
            os.kill(os.getpid(), signal.SIGKILL)

    def _chunk_state(self, message: Dict[str, Any],
                     kind: str) -> _ChunkState:
        """The chunk a message refers to — type-checked, because the
        id came off the wire and e.g. an unhashable list must read as
        a protocol violation, not a TypeError in the dict lookup."""
        chunk_id = message.get("chunk")
        if not isinstance(chunk_id, int):
            raise ProtocolError(
                f"{kind} with non-integer chunk id {chunk_id!r}")
        state = self._chunks.get(chunk_id)
        if state is None:
            raise ProtocolError(f"{kind} for unknown chunk {chunk_id!r}")
        return state

    def _on_chunk_done(self, worker: str, message: Dict[str, Any]) -> None:
        resolved: Optional[Tuple[int, int]] = None
        with self._lock:
            state = self._chunk_state(message, "chunk_done")
            # Only the current lease holder resolves the chunk: a
            # zombie finishing a stolen chunk is ignored (its records
            # were deduplicated on arrival anyway).
            if state.status == _LEASED and state.worker == worker:
                state.status = _DONE
                self._release_lease_locked(state)
                info = self._worker_info.get(worker)
                if info is not None:
                    info["chunks_done"] += 1
                # ``records``: the worker's cumulative ingest watermark
                # at completion — lets a journal reader bound how much
                # of a shard the crashed run had already accepted.
                resolved = (state.chunk.chunk_id,
                            info["records"] if info else 0)
                self._check_complete_locked()
        if resolved is not None:
            self._journal_event("done", chunk=resolved[0], worker=worker,
                                records=resolved[1])

    def _on_chunk_error(self, worker: str, message: Dict[str, Any]) -> None:
        quarantine = False
        with self._lock:
            state = self._chunk_state(message, "chunk_error")
            if state.status == _LEASED and state.worker == worker:
                _log.warning("fleet: chunk %s failed on %s (%s)",
                             state.chunk.chunk_id, worker,
                             message.get("error"))
                self._requeue_locked(state)
                errors = self._worker_chunk_errors.get(worker, 0) + 1
                self._worker_chunk_errors[worker] = errors
                if errors >= self.quarantine_after:
                    self._quarantined.add(worker)
                    if worker not in self.stats.quarantined:
                        self.stats.quarantined.append(worker)
                    quarantine = True
        if quarantine:
            errors = self._worker_chunk_errors[worker]
            self._journal_event("quarantine", worker=worker,
                                chunk_errors=errors)
            # Raising drops the connection with an ``error`` frame;
            # the worker's retry classifier reads that as semantic
            # (not a network blip) and exits instead of reconnecting.
            raise ProtocolError(
                f"worker {worker!r} quarantined after {errors} chunk "
                f"error(s); its leases are re-queued for healthier peers")

    # -- leases ------------------------------------------------------------

    def _touch_leases(self, worker: str) -> None:
        with self._lock:
            self._touch_leases_locked(worker)

    def _touch_leases_locked(self, worker: str) -> None:
        deadline = _time.monotonic() + self.lease_timeout
        for chunk_id in self._worker_leases.get(worker, ()):
            self._chunks[chunk_id].deadline = deadline

    def _release_lease_locked(self, state: _ChunkState) -> None:
        if state.worker is not None:
            self._worker_leases.get(state.worker, set()).discard(
                state.chunk.chunk_id)
        state.worker = None

    def _requeue_locked(self, state: _ChunkState) -> None:
        """Give a reclaimed/errored chunk another chance — or fail it
        for good once its attempts are spent."""
        self._release_lease_locked(state)
        if state.attempts >= self.max_chunk_attempts:
            state.status = _FAILED
            self.stats.failed_chunks += 1
            _log.error("fleet: chunk %d failed permanently after %d "
                       "attempt(s)", state.chunk.chunk_id, state.attempts)
            self._journal_event("failed", chunk=state.chunk.chunk_id,
                                attempts=state.attempts)
            self._check_complete_locked()
        else:
            state.status = _PENDING
            self._queue.append(state.chunk.chunk_id)
            self._journal_event("requeue", chunk=state.chunk.chunk_id,
                                attempts=state.attempts)

    def _reclaim_expired_locked(self, now: float) -> None:
        for worker, chunk_ids in list(self._worker_leases.items()):
            for chunk_id in list(chunk_ids):
                state = self._chunks[chunk_id]
                if state.status == _LEASED and now > state.deadline:
                    _log.warning("fleet: lease on chunk %d (worker %s) "
                                 "expired; re-queueing", chunk_id, worker)
                    self.stats.reclaimed += 1
                    self._requeue_locked(state)

    def _on_disconnect(self, worker: str) -> None:
        with self._lock:
            self._connected.discard(worker)
            for chunk_id in list(self._worker_leases.get(worker, ())):
                state = self._chunks[chunk_id]
                if state.status == _LEASED:
                    _log.warning(
                        "fleet: worker %s disconnected holding chunk %d; "
                        "re-queueing", worker, chunk_id)
                    self.stats.reclaimed += 1
                    self._requeue_locked(state)

    def _check_complete_locked(self) -> None:
        if all(state.status in (_DONE, _FAILED)
               for state in self._chunks.values()):
            self._done.set()

    # -- observation & merge ----------------------------------------------

    def status(self) -> Dict[str, Any]:
        """Snapshot for ``repro fleet status`` and the executor."""
        with self._lock:
            by_status: Dict[str, int] = {}
            for state in self._chunks.values():
                by_status[state.status] = by_status.get(state.status, 0) + 1
            now = _time.monotonic()
            workers: Dict[str, Dict[str, Any]] = {}
            fleet_counters: Dict[str, float] = {}
            for name, info in self._worker_info.items():
                entry: Dict[str, Any] = {
                    "records": info["records"],
                    "chunks_done": info["chunks_done"],
                    "reconnects": info.get("reconnects", 0),
                    "connected": name in self._connected,
                    "idle_seconds": round(now - info["last_seen"], 3),
                }
                progress = info.get("worker_stats")
                if progress:
                    entry["worker_stats"] = dict(progress)
                    reconnects = progress.get("reconnects")
                    if isinstance(reconnects, (int, float)):
                        entry["reconnects"] = max(
                            entry["reconnects"], int(reconnects))
                snap = info.get("metrics")
                if snap is not None:
                    entry["metrics"] = snap
                    counters = snap.get("counters")
                    if isinstance(counters, dict):
                        for key, value in counters.items():
                            if isinstance(value, (int, float)):
                                fleet_counters[key] = (
                                    fleet_counters.get(key, 0) + value)
                entry["metrics_samples"] = len(
                    info.get("metrics_series", ()))
                workers[name] = entry
            return {
                "chunks": {"total": len(self._chunks), **by_status},
                "records_ingested": self.stats.records_ingested,
                "duplicates_dropped": self.stats.duplicates_dropped,
                "reclaimed": self.stats.reclaimed,
                "workers": workers,
                "fleet_metrics": {"counters": fleet_counters},
                "quarantined": sorted(self._quarantined),
                "resumed": self.stats.resumed,
                "done": self._done.is_set(),
            }

    def finish(self, transport: str = "tcp",
               cleanup: bool = True) -> FleetRunStats:
        """Merge the shard stores into the target store (canonical
        spec order, key dedup, healthy-beats-error) and write the run
        provenance.  Call after :meth:`wait`; returns the run stats."""
        shards_root = os.path.join(self.store.path, SHARDS_DIR)
        shard_paths = list_shards(shards_root)
        shards = [ResultStore(path, create=False) for path in shard_paths]
        # Keys whose record this merge appended — including error
        # records it superseded — are those whose index signature
        # changed.  (fingerprint, error) rather than the byte offset:
        # a columnar store legitimately moves resident rows to new
        # offsets when it seals its tail mid-merge, but never changes
        # what they claim.
        signature_before = {(e.spec_hash, e.seed): (e.fingerprint, e.error)
                            for e in self.store.iter_entries()}
        with span("fleet.merge", shards=len(shards)):
            self.stats.merged = self.store.merge_from(
                shards, order=self._order_keys, replace_errors=True)
        signature_after = {(e.spec_hash, e.seed): (e.fingerprint, e.error)
                           for e in self.store.iter_entries()}
        merged_keys = [key for key in self._order_keys
                       if key in signature_after
                       and signature_after[key] != signature_before.get(key)]
        self.stats.failed += sum(
            1 for key in merged_keys if self.store.has_error(key))
        # Columnar stores answer this from the verdict columns; JSONL
        # stores stream the merged records once, as before.
        self.stats.slo_failures += self.store.count_failing_slos(merged_keys)
        self.stats.unfinished = sum(
            1 for key in self._order_keys if key not in self.store)
        from repro import __version__

        self.store.record_provenance({
            "transport": transport,
            "workers": len(self.stats.workers),
            "worker_ids": list(self.stats.workers),
            "chunks": self.stats.chunks,
            "chunk_size": self.stats.chunk_size,
            "lease_timeout": self.lease_timeout,
            "reclaimed": self.stats.reclaimed,
            "merged": self.stats.merged,
            "merged_from": [os.path.basename(p) for p in shard_paths],
            "resumed": self.stats.resumed,
            "reingested_records": self.stats.reingested_records,
            "repro_version": __version__,
        })
        if cleanup and os.path.isdir(shards_root):
            shutil.rmtree(shards_root, ignore_errors=True)
        # ``finished`` marks the journal as fully consumed: the shards
        # are merged (and gone), so there is nothing left to resume.
        self._journal_event("finished", merged=self.stats.merged,
                            unfinished=self.stats.unfinished)
        if self._journal is not None:
            self._journal.close()
        # Mirror the run counters into the metrics registry (numeric
        # fields only; lists/flags are skipped by set_stats).
        metrics().set_stats("fleet.coordinator", self.stats.to_dict())
        return self.stats


def resume_coordinator(
    journal_path: str,
    host: str = "127.0.0.1",
    port: int = 0,
    lease_timeout: Optional[float] = None,
    max_chunk_attempts: Optional[int] = None,
    poll_hint: float = 0.2,
    quarantine_after: int = 3,
) -> FleetCoordinator:
    """Rebuild a coordinator for a crashed fleet run from its journal.

    The journal's ``plan`` line resurrects the exact chunk plan (ids
    and spec payloads — no generator flags to re-supply); what the
    crashed run already *completed* is then re-derived from disk, not
    from the journal's tail, which may be torn arbitrarily close to
    the crash:

    * every key in the target store or a surviving worker shard is
      seeded into the dedup map (healthy copies beating error copies,
      as at ingest), so re-leased workers returning those keys are
      deduplicated away;
    * a chunk whose keys are all covered is marked done without ever
      being leased — its shard-resident records are *re-ingested* by
      the final merge instead of re-run (``stats.reingested_*``);
    * everything else — never leased, or torn mid-chunk — is re-queued
      with a fresh attempt budget (``stats.requeued_lost``); the crash
      was the coordinator's fault, not the chunks'.

    The returned coordinator is not yet started; call :meth:`start`
    (which appends a ``resume`` event and *keeps* the shards) and
    drive it exactly like a fresh one.
    """
    events = FleetJournal.read_events(journal_path)
    plan = FleetJournal.find_plan(events)
    if plan is None:
        raise ConfigurationError(
            f"fleet journal {journal_path!r} has no plan event — the "
            f"original run died before writing one, so there is nothing "
            f"to resume; re-run the sweep from its generator flags")
    if any(event["event"] == "finished" for event in events):
        raise ConfigurationError(
            f"fleet journal {journal_path!r} records a completed run "
            f"(its shards are already merged); nothing to resume")
    chunks = [WorkChunk(chunk_id=int(entry["chunk"]),
                        payloads=list(entry["specs"]))
              for entry in plan.get("chunks", [])]
    payloads = [payload for chunk in chunks for payload in chunk.payloads]
    store = ResultStore(str(plan["store"]), create=False)
    coordinator = FleetCoordinator(
        payloads,
        store,
        lease_timeout=float(lease_timeout
                            if lease_timeout is not None
                            else plan.get("lease_timeout", 30.0)),
        max_chunk_attempts=int(max_chunk_attempts
                               if max_chunk_attempts is not None
                               else plan.get("max_chunk_attempts", 5)),
        host=host,
        port=port,
        poll_hint=poll_hint,
        journal=journal_path,
        chunks=chunks,
        quarantine_after=quarantine_after,
        resume=True,
    )
    # Coverage, from disk: the target store first, then every
    # surviving shard (the crashed run's fsync'd ingest).  Keys only
    # *shards* hold are the salvage — they will reach the target store
    # through the merge, not through a re-run.
    covered: Dict[Tuple[str, int], bool] = {
        (entry.spec_hash, entry.seed): bool(entry.error)
        for entry in store.iter_entries()}
    in_store = set(covered)
    shards_root = os.path.join(store.path, SHARDS_DIR)
    for shard_path in list_shards(shards_root):
        try:
            shard = ResultStore(shard_path, create=False, readonly=True)
        except Exception as exc:  # noqa: BLE001 - salvage is best-effort
            # A shard torn beyond its own recovery (e.g. a dying
            # column segment) forfeits only that shard's salvage; its
            # chunks simply re-run.
            _log.warning("fleet resume: skipping unreadable shard %s "
                         "(%s)", shard_path, exc)
            continue
        for entry in shard.iter_entries():
            key = (entry.spec_hash, entry.seed)
            is_error = bool(entry.error)
            if key not in covered or (covered[key] and not is_error):
                covered[key] = is_error
    stats = coordinator.stats
    stats.reingested_records = sum(
        1 for key in covered
        if key not in in_store and key in coordinator._valid_keys)
    with coordinator._lock:
        for key, is_error in covered.items():
            if key in coordinator._valid_keys:
                coordinator._seen[key] = is_error
        pending = []
        for chunk_id in sorted(coordinator._chunks):
            state = coordinator._chunks[chunk_id]
            keys = [(spec_hash(payload), payload.get("seed", 0))
                    for payload in state.chunk.payloads]
            if keys and all(key in covered for key in keys):
                state.status = _DONE
                if any(key not in in_store for key in keys):
                    stats.reingested_chunks += 1
            else:
                stats.requeued_lost += 1
                pending.append(chunk_id)
        coordinator._queue = deque(pending)
        coordinator._check_complete_locked()
    _log.info(
        "fleet resume: %d chunk(s) already covered (%d salvaged from "
        "shards, %d record(s) to re-ingest), %d re-queued",
        stats.chunks - stats.requeued_lost, stats.reingested_chunks,
        stats.reingested_records, stats.requeued_lost)
    return coordinator
