"""The fleet coordinator: leases chunks out, herds the records home.

One coordinator owns one campaign's worth of pending work.  It plans
the sweep's spec payloads into contiguous chunks (see
:func:`repro.scenarios.campaign.plan_chunks`), serves them to workers
over the frame protocol, and streams every returned record into a
per-worker *shard* :class:`~repro.results.store.ResultStore` under
``<store>/shards/``.  When every chunk is resolved it merges the
shards into the target store in the sweep's canonical spec order — so
a fleet run's store is record-for-record identical to a single-box
``Campaign.run`` of the same specs.

Failure model (work stealing):

* a worker's TCP connection dying (SIGKILL, OOM, network) immediately
  reclaims its leased chunks and re-queues them for the next
  ``request``;
* a worker that stays connected but stops making progress loses its
  lease after ``lease_timeout`` seconds without a frame (records and
  heartbeats both refresh it) — the monitor thread re-queues the
  chunk, and late records from the zombie are deduplicated away;
* a worker reporting ``chunk_error`` (infrastructure failure outside
  the per-scenario fault isolation) gets the chunk re-queued, up to
  ``max_chunk_attempts`` per chunk before it is marked failed.

Duplicate completions are inevitable under reclaim (the original
worker may finish after the steal); the coordinator dedups record
ingest by ``(spec_hash, seed)``.  Records are deterministic given a
spec, so which copy survives does not matter — except that a healthy
record always supersedes an error record, both at ingest and at
merge, so a flaky worker cannot poison a key another worker completed.
"""

from __future__ import annotations

import logging
import os
import shutil
import socket
import threading
import time as _time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.results.records import record_error, spec_hash
from repro.results.store import (
    ResultStore,
    SHARDS_DIR,
    list_shards,
    shard_store_name,
)
from repro.fleet.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.scenarios.campaign import WorkChunk, plan_chunks

_log = logging.getLogger("repro.fleet")

_PENDING, _LEASED, _DONE, _FAILED = "pending", "leased", "done", "failed"


@dataclass
class _ChunkState:
    chunk: WorkChunk
    status: str = _PENDING
    worker: Optional[str] = None
    deadline: float = 0.0
    attempts: int = 0


@dataclass
class FleetRunStats:
    """What one fleet run did, beyond the records it produced."""

    chunks: int = 0
    chunk_size: int = 0
    workers: List[str] = field(default_factory=list)
    reclaimed: int = 0            # leases stolen back (death or expiry)
    failed_chunks: int = 0        # chunks that exhausted their attempts
    records_ingested: int = 0     # accepted into shard stores
    duplicates_dropped: int = 0   # re-runs of already-ingested keys
    merged: int = 0               # records appended to the final store
    unfinished: int = 0           # specs never completed (failed chunks)
    failed: int = 0               # merged records that are error records
    slo_failures: int = 0         # non-passing verdicts in merged records

    def to_dict(self) -> Dict[str, Any]:
        return {
            "chunks": self.chunks, "chunk_size": self.chunk_size,
            "workers": list(self.workers), "reclaimed": self.reclaimed,
            "failed_chunks": self.failed_chunks,
            "records_ingested": self.records_ingested,
            "duplicates_dropped": self.duplicates_dropped,
            "merged": self.merged, "unfinished": self.unfinished,
            "failed": self.failed, "slo_failures": self.slo_failures,
        }


class FleetCoordinator:
    """Serve one campaign's chunks to fleet workers over TCP."""

    def __init__(
        self,
        payloads: List[Dict[str, Any]],
        store: ResultStore,
        chunk_size: Optional[int] = None,
        workers_hint: int = 1,
        lease_timeout: float = 30.0,
        max_chunk_attempts: int = 5,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_hint: float = 0.2,
    ):
        if store.readonly:
            raise ConfigurationError("fleet target store is read-only")
        if lease_timeout <= 0:
            raise ConfigurationError(
                f"lease_timeout must be > 0, got {lease_timeout}")
        self.store = store
        self.lease_timeout = lease_timeout
        self.max_chunk_attempts = max_chunk_attempts
        self.poll_hint = poll_hint
        self._host_req, self._port_req = host, port
        # Canonical order: the sweep's spec order, which is also the
        # append order of a single-box run — merge preserves it.
        self._order_keys: List[Tuple[str, int]] = [
            (spec_hash(payload), payload.get("seed", 0))
            for payload in payloads]
        self._valid_keys = set(self._order_keys)
        chunks = plan_chunks(payloads, chunk_size=chunk_size,
                             workers=workers_hint)
        self.stats = FleetRunStats(
            chunks=len(chunks),
            chunk_size=max((len(c.payloads) for c in chunks), default=0))
        self._chunks: Dict[int, _ChunkState] = {
            c.chunk_id: _ChunkState(chunk=c) for c in chunks}
        self._queue = deque(sorted(self._chunks))
        self._seen: Dict[Tuple[str, int], bool] = {}   # key -> is_error
        # worker -> chunk ids it currently leases: keeps lease touch/
        # expiry scans proportional to live leases, not total chunks.
        self._worker_leases: Dict[str, set] = {}
        self._shards: Dict[str, ResultStore] = {}
        self._worker_info: Dict[str, Dict[str, Any]] = {}
        self._connected: set = set()
        self._lock = threading.RLock()
        self._done = threading.Event()
        self._stopping = threading.Event()
        self._server: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._clients: List[socket.socket] = []
        if not self._chunks:
            self._done.set()

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise ConfigurationError("coordinator is not started")
        return self._server.getsockname()[:2]

    def start(self) -> "FleetCoordinator":
        # A crashed fleet run can leave unmerged shards behind; their
        # keys would collide with this run's re-executed specs, so the
        # slate is wiped (the target store, not the shards, is the
        # resume source of truth).
        shards_root = os.path.join(self.store.path, SHARDS_DIR)
        if os.path.isdir(shards_root):
            _log.warning("fleet: discarding stale shards in %s", shards_root)
            shutil.rmtree(shards_root, ignore_errors=True)
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self._host_req, self._port_req))
        server.listen(64)
        # Accept with a timeout: a blocked accept() is not reliably
        # woken by close() from another thread, and stop() must not
        # hang on it.
        server.settimeout(0.25)
        self._server = server
        for target in (self._accept_loop, self._monitor_loop):
            thread = threading.Thread(target=target, daemon=True,
                                      name=f"fleet-{target.__name__}")
            thread.start()
            self._threads.append(thread)
        _log.info("fleet coordinator serving %d chunk(s) on %s:%d",
                  len(self._chunks), *self.address)
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until every chunk is resolved (done or failed)."""
        return self._done.wait(timeout)

    def drain(self, timeout: float = 5.0) -> None:
        """Give connected workers a moment to hear ``done`` and hang
        up cleanly before :meth:`stop` slams the sockets — otherwise a
        worker blocked on its next ``request`` reads the close as a
        coordinator crash and exits non-zero."""
        deadline = _time.monotonic() + timeout
        while _time.monotonic() < deadline:
            with self._lock:
                if not self._connected:
                    return
            _time.sleep(0.05)

    def stop(self) -> None:
        """Tear down the sockets and threads (idempotent)."""
        self._stopping.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
        with self._lock:
            clients = list(self._clients)
        for sock in clients:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        for thread in list(self._threads):
            thread.join(timeout=2.0)

    # -- server loops ------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._server is not None
        while not self._stopping.is_set():
            try:
                sock, addr = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed
            sock.settimeout(None)  # workers block on recv indefinitely
            with self._lock:
                self._clients.append(sock)
            thread = threading.Thread(target=self._serve_client,
                                      args=(sock, addr), daemon=True,
                                      name=f"fleet-client-{addr[1]}")
            thread.start()
            self._threads.append(thread)

    def _monitor_loop(self) -> None:
        tick = max(0.05, self.lease_timeout / 5.0)
        while not self._stopping.is_set():
            if self._stopping.wait(tick):
                return
            with self._lock:
                self._reclaim_expired_locked(_time.monotonic())

    def _serve_client(self, sock: socket.socket,
                      addr: Tuple[str, int]) -> None:
        """One connection's read loop.  Garbage in -> a best-effort
        ``error`` frame and a closed socket, never a coordinator
        crash; the dropped worker's leases are reclaimed."""
        worker: Optional[str] = None
        try:
            while True:
                message = recv_message(sock)
                if message is None or message["type"] == "bye":
                    return
                worker = self._dispatch(sock, message, worker)
        except ProtocolError as exc:
            _log.warning("fleet: dropping %s:%d (%s)", addr[0], addr[1], exc)
            try:
                send_message(sock, {"type": "error", "message": str(exc)})
            except OSError:
                pass
        except OSError:
            pass  # peer vanished mid-write; disconnect handling below
        except Exception:  # noqa: BLE001 - the no-crash contract
            # Hostile input must never take a serving thread down
            # silently; anything the dispatchers didn't classify is
            # logged and treated like a protocol violation.
            _log.exception("fleet: unexpected error serving %s:%d; "
                           "dropping the connection", addr[0], addr[1])
            try:
                send_message(sock, {"type": "error",
                                    "message": "internal coordinator error"})
            except OSError:
                pass
        finally:
            if worker is not None:
                self._on_disconnect(worker)
            with self._lock:
                if sock in self._clients:
                    self._clients.remove(sock)
            try:
                sock.close()
            except OSError:
                pass

    # -- message dispatch --------------------------------------------------

    def _dispatch(self, sock: socket.socket, message: Dict[str, Any],
                  worker: Optional[str]) -> Optional[str]:
        kind = message["type"]
        if kind == "status":
            send_message(sock, {"type": "status_reply",
                                "status": self.status()})
            return worker
        if kind == "hello":
            if worker is not None:
                # A second hello would register a phantom worker the
                # disconnect cleanup never removes.
                raise ProtocolError("repeated hello on one connection")
            return self._on_hello(sock, message)
        if worker is None:
            raise ProtocolError(f"{kind!r} before hello")
        with self._lock:
            info = self._worker_info.get(worker)
            if info is not None:
                info["last_seen"] = _time.monotonic()
        if kind == "request":
            self._on_request(sock, worker)
        elif kind == "record":
            self._on_record(worker, message)
        elif kind == "chunk_done":
            self._on_chunk_done(worker, message)
        elif kind == "chunk_error":
            self._on_chunk_error(worker, message)
        elif kind == "heartbeat":
            self._touch_leases(worker)
        else:
            raise ProtocolError(f"unknown message type {kind!r}")
        return worker

    def _on_hello(self, sock: socket.socket,
                  message: Dict[str, Any]) -> str:
        if message.get("protocol") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: coordinator speaks "
                f"{PROTOCOL_VERSION}, worker sent "
                f"{message.get('protocol')!r}")
        requested = message.get("worker")
        if not isinstance(requested, str) or not requested:
            requested = "worker"
        with self._lock:
            # Uniquify on the SANITIZED shard name too: ids like
            # 'w:1' and 'w;1' differ raw but map to the same shard
            # directory, and two live workers must never share one
            # (concurrent appends would interleave records).
            taken_shards = {shard_store_name(name)
                            for name in self._connected}
            worker = requested
            suffix = 2
            while (worker in self._connected
                   or shard_store_name(worker) in taken_shards):
                worker = f"{requested}~{suffix}"
                suffix += 1
            self._connected.add(worker)
            self._worker_info[worker] = {
                "records": 0, "chunks_done": 0,
                "last_seen": _time.monotonic(),
            }
            if worker not in self.stats.workers:
                self.stats.workers.append(worker)
        _log.info("fleet: worker %s joined", worker)
        send_message(sock, {"type": "welcome", "worker": worker,
                            "chunks": len(self._chunks),
                            "heartbeat": self.lease_timeout / 3.0})
        return worker

    def _on_request(self, sock: socket.socket, worker: str) -> None:
        now = _time.monotonic()
        with self._lock:
            self._reclaim_expired_locked(now)
            if self._queue:
                chunk_id = self._queue.popleft()
                state = self._chunks[chunk_id]
                state.status = _LEASED
                state.worker = worker
                state.deadline = now + self.lease_timeout
                state.attempts += 1
                self._worker_leases.setdefault(worker, set()).add(chunk_id)
                reply = {"type": "chunk", "chunk": chunk_id,
                         "specs": state.chunk.payloads}
            elif self._done.is_set():
                reply = {"type": "done"}
            else:
                reply = {"type": "wait", "seconds": self.poll_hint}
        send_message(sock, reply)

    def _on_record(self, worker: str, message: Dict[str, Any]) -> None:
        record = message.get("record")
        if not isinstance(record, dict):
            raise ProtocolError("record message without a record object")
        try:
            key = (record["spec_hash"], record["seed"])
        except KeyError as exc:
            raise ProtocolError(f"record missing {exc}") from None
        if not isinstance(key[0], str) or not isinstance(key[1], int):
            raise ProtocolError("record key is not (str spec_hash, int seed)")
        if key not in self._valid_keys:
            # Not part of this sweep: a worker built against different
            # spec code (mismatched hashing) or a hostile peer.  Either
            # way it must not leak into the canonical store.
            raise ProtocolError(
                f"record key {key} is not in this sweep's work list")
        is_error = record_error(record) is not None
        with self._lock:
            self._touch_leases_locked(worker)
            if key in self._seen and not (self._seen[key] and not is_error):
                # Duplicate from a reclaimed-but-alive worker; a healthy
                # record is only re-admitted over a previous error one.
                self.stats.duplicates_dropped += 1
                return
            self._seen[key] = is_error
            shard = self._shards.get(worker)
            if shard is None:
                # Shards share the target store's format so the merge
                # can move whole segments instead of records.
                shard = ResultStore(
                    os.path.join(self.store.path, SHARDS_DIR,
                                 shard_store_name(worker)),
                    format=self.store.storage_format)
                self._shards[worker] = shard
        # The fsync-bearing append happens OUTSIDE the global lock: a
        # shard is written only by its own worker's connection thread,
        # and serializing every worker's disk flush behind one lock
        # would also stall the heartbeat/lease handling that shares it.
        try:
            shard.append(record, replace=key in shard)
        except Exception:
            with self._lock:
                # Release the claim so another worker can land the key
                # (unless someone already upgraded it meanwhile).
                if self._seen.get(key) == is_error:
                    del self._seen[key]
            raise
        with self._lock:
            self.stats.records_ingested += 1
            info = self._worker_info.get(worker)
            if info is not None:
                info["records"] += 1

    def _chunk_state(self, message: Dict[str, Any],
                     kind: str) -> _ChunkState:
        """The chunk a message refers to — type-checked, because the
        id came off the wire and e.g. an unhashable list must read as
        a protocol violation, not a TypeError in the dict lookup."""
        chunk_id = message.get("chunk")
        if not isinstance(chunk_id, int):
            raise ProtocolError(
                f"{kind} with non-integer chunk id {chunk_id!r}")
        state = self._chunks.get(chunk_id)
        if state is None:
            raise ProtocolError(f"{kind} for unknown chunk {chunk_id!r}")
        return state

    def _on_chunk_done(self, worker: str, message: Dict[str, Any]) -> None:
        with self._lock:
            state = self._chunk_state(message, "chunk_done")
            # Only the current lease holder resolves the chunk: a
            # zombie finishing a stolen chunk is ignored (its records
            # were deduplicated on arrival anyway).
            if state.status == _LEASED and state.worker == worker:
                state.status = _DONE
                self._release_lease_locked(state)
                info = self._worker_info.get(worker)
                if info is not None:
                    info["chunks_done"] += 1
                self._check_complete_locked()

    def _on_chunk_error(self, worker: str, message: Dict[str, Any]) -> None:
        with self._lock:
            state = self._chunk_state(message, "chunk_error")
            if state.status == _LEASED and state.worker == worker:
                _log.warning("fleet: chunk %s failed on %s (%s)",
                             state.chunk.chunk_id, worker,
                             message.get("error"))
                self._requeue_locked(state)

    # -- leases ------------------------------------------------------------

    def _touch_leases(self, worker: str) -> None:
        with self._lock:
            self._touch_leases_locked(worker)

    def _touch_leases_locked(self, worker: str) -> None:
        deadline = _time.monotonic() + self.lease_timeout
        for chunk_id in self._worker_leases.get(worker, ()):
            self._chunks[chunk_id].deadline = deadline

    def _release_lease_locked(self, state: _ChunkState) -> None:
        if state.worker is not None:
            self._worker_leases.get(state.worker, set()).discard(
                state.chunk.chunk_id)
        state.worker = None

    def _requeue_locked(self, state: _ChunkState) -> None:
        """Give a reclaimed/errored chunk another chance — or fail it
        for good once its attempts are spent."""
        self._release_lease_locked(state)
        if state.attempts >= self.max_chunk_attempts:
            state.status = _FAILED
            self.stats.failed_chunks += 1
            _log.error("fleet: chunk %d failed permanently after %d "
                       "attempt(s)", state.chunk.chunk_id, state.attempts)
            self._check_complete_locked()
        else:
            state.status = _PENDING
            self._queue.append(state.chunk.chunk_id)

    def _reclaim_expired_locked(self, now: float) -> None:
        for worker, chunk_ids in list(self._worker_leases.items()):
            for chunk_id in list(chunk_ids):
                state = self._chunks[chunk_id]
                if state.status == _LEASED and now > state.deadline:
                    _log.warning("fleet: lease on chunk %d (worker %s) "
                                 "expired; re-queueing", chunk_id, worker)
                    self.stats.reclaimed += 1
                    self._requeue_locked(state)

    def _on_disconnect(self, worker: str) -> None:
        with self._lock:
            self._connected.discard(worker)
            for chunk_id in list(self._worker_leases.get(worker, ())):
                state = self._chunks[chunk_id]
                if state.status == _LEASED:
                    _log.warning(
                        "fleet: worker %s disconnected holding chunk %d; "
                        "re-queueing", worker, chunk_id)
                    self.stats.reclaimed += 1
                    self._requeue_locked(state)

    def _check_complete_locked(self) -> None:
        if all(state.status in (_DONE, _FAILED)
               for state in self._chunks.values()):
            self._done.set()

    # -- observation & merge ----------------------------------------------

    def status(self) -> Dict[str, Any]:
        """Snapshot for ``repro fleet status`` and the executor."""
        with self._lock:
            by_status: Dict[str, int] = {}
            for state in self._chunks.values():
                by_status[state.status] = by_status.get(state.status, 0) + 1
            now = _time.monotonic()
            workers = {
                name: {"records": info["records"],
                       "chunks_done": info["chunks_done"],
                       "connected": name in self._connected,
                       "idle_seconds": round(now - info["last_seen"], 3)}
                for name, info in self._worker_info.items()}
            return {
                "chunks": {"total": len(self._chunks), **by_status},
                "records_ingested": self.stats.records_ingested,
                "duplicates_dropped": self.stats.duplicates_dropped,
                "reclaimed": self.stats.reclaimed,
                "workers": workers,
                "done": self._done.is_set(),
            }

    def finish(self, transport: str = "tcp",
               cleanup: bool = True) -> FleetRunStats:
        """Merge the shard stores into the target store (canonical
        spec order, key dedup, healthy-beats-error) and write the run
        provenance.  Call after :meth:`wait`; returns the run stats."""
        shards_root = os.path.join(self.store.path, SHARDS_DIR)
        shard_paths = list_shards(shards_root)
        shards = [ResultStore(path, create=False) for path in shard_paths]
        # Keys whose record this merge appended — including error
        # records it superseded — are those whose index signature
        # changed.  (fingerprint, error) rather than the byte offset:
        # a columnar store legitimately moves resident rows to new
        # offsets when it seals its tail mid-merge, but never changes
        # what they claim.
        signature_before = {(e.spec_hash, e.seed): (e.fingerprint, e.error)
                            for e in self.store.iter_entries()}
        self.stats.merged = self.store.merge_from(
            shards, order=self._order_keys, replace_errors=True)
        signature_after = {(e.spec_hash, e.seed): (e.fingerprint, e.error)
                           for e in self.store.iter_entries()}
        merged_keys = [key for key in self._order_keys
                       if key in signature_after
                       and signature_after[key] != signature_before.get(key)]
        self.stats.failed += sum(
            1 for key in merged_keys if self.store.has_error(key))
        # Columnar stores answer this from the verdict columns; JSONL
        # stores stream the merged records once, as before.
        self.stats.slo_failures += self.store.count_failing_slos(merged_keys)
        self.stats.unfinished = sum(
            1 for key in self._order_keys if key not in self.store)
        from repro import __version__

        self.store.record_provenance({
            "transport": transport,
            "workers": len(self.stats.workers),
            "worker_ids": list(self.stats.workers),
            "chunks": self.stats.chunks,
            "chunk_size": self.stats.chunk_size,
            "lease_timeout": self.lease_timeout,
            "reclaimed": self.stats.reclaimed,
            "merged": self.stats.merged,
            "merged_from": [os.path.basename(p) for p in shard_paths],
            "repro_version": __version__,
        })
        if cleanup and os.path.isdir(shards_root):
            shutil.rmtree(shards_root, ignore_errors=True)
        return self.stats
