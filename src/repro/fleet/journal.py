"""The coordinator's crash journal: fsync'd JSONL, torn-tail tolerant.

A fleet run's *records* are already durable the moment they land in a
worker shard store — what dies with a SIGKILLed coordinator is the
bookkeeping: which chunks existed, which were done, and where the
shards live.  The journal makes that bookkeeping durable: the
coordinator appends one JSON line per chunk-state transition
(``plan``, ``lease``, ``requeue``, ``done``, ``failed``, ``shard``,
``quarantine``, ``resume``, ``finished``), each flushed and fsync'd
before the coordinator acts on it, so ``repro fleet serve --resume
<journal>`` can rebuild the lease table and re-ingest surviving shards
instead of re-running them.

The durability idiom is the one :mod:`repro.results.store` pinned
down: append-only JSONL, one fsync per line, and a reader that drops a
torn trailing line (a crash mid-append) instead of refusing the whole
file.  Unlike the store's sidecar the journal is *advisory* on resume
— chunk coverage is re-derived from the shards and target store on
disk, so even a journal missing its newest transitions (the torn tail)
resumes correctly; only the ``plan`` line is load-bearing, and it is
the first line written.

Event vocabulary (all events carry ``"event"`` and ``"t"`` wall-clock
seconds; the rest is event-specific):

``plan``        the whole sweep: store path/format, explicit chunk
                list with spec payloads, lease/attempt knobs — enough
                to rebuild the coordinator with the *identical* chunk
                plan, with no generator flags to re-supply
``lease``       {chunk, worker, attempts}
``requeue``     {chunk} — reclaimed or errored, going around again
``done``        {chunk, worker, records} — ``records`` is the worker's
                cumulative ingest watermark at completion
``failed``      {chunk, attempts} — attempts exhausted, given up
``shard``       {worker, path} — a worker's shard store was created
``quarantine``  {worker, chunk_errors}
``resume``      a resumed coordinator took over this journal
``finished``    {merged} — the shard merge completed; nothing to resume
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time as _time
from typing import Any, Dict, List, Optional

from repro.core.errors import ConfigurationError

_log = logging.getLogger("repro.fleet")

#: Default journal file name, next to the target store's own files.
JOURNAL_FILE = "fleet-journal.jsonl"


def default_journal_path(store_path: str) -> str:
    """Where a coordinator journals for a given target store."""
    return os.path.join(store_path, JOURNAL_FILE)


class FleetJournal:
    """Append-only, fsync-per-line event log for one fleet run.

    ``fresh=True`` truncates (a new run's plan supersedes any previous
    journal at the path); ``fresh=False`` appends (the resume path
    continues the original run's log).  Appends are thread-safe — the
    coordinator journals from its serving threads.
    """

    def __init__(self, path: str, fresh: bool = False):
        self.path = os.path.abspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(self.path, "wb" if fresh else "ab")

    def append(self, event: str, **fields: Any) -> None:
        """Durably log one event: the line is on disk (flushed and
        fsync'd) before this returns, so any state transition the
        coordinator acts on is recoverable."""
        payload = {"event": event, "t": round(_time.time(), 3), **fields}
        line = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line)
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "FleetJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @staticmethod
    def read_events(path: str) -> List[Dict[str, Any]]:
        """Every well-formed event in the journal, in append order.

        A torn trailing line (the coordinator died mid-append) is
        dropped, exactly like the result store's torn-tail recovery;
        a malformed interior line is skipped with a warning rather
        than poisoning the resume.
        """
        if not os.path.exists(path):
            raise ConfigurationError(
                f"fleet journal {path!r} does not exist")
        events: List[Dict[str, Any]] = []
        with open(path, "rb") as handle:
            for line in handle:
                if not line.endswith(b"\n"):
                    break  # torn tail: the crash's final, partial append
                try:
                    event = json.loads(line)
                except ValueError:
                    _log.warning("fleet journal %s: skipping malformed "
                                 "line", path)
                    continue
                if isinstance(event, dict) and isinstance(
                        event.get("event"), str):
                    events.append(event)
        return events

    @staticmethod
    def find_plan(events: List[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
        """The run's ``plan`` event (the first one, if several)."""
        for event in events:
            if event["event"] == "plan":
                return event
        return None
