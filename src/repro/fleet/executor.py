"""The :class:`FleetExecutor`: a distributed backend for
``Campaign.run``.

``Campaign.run(store=..., executor=FleetExecutor(...))`` keeps the
campaign API — resume skipping, stats, gating — and swaps the
``multiprocessing.Pool`` for a coordinator + workers over the chosen
transport.  The contract it upholds: the merged store at the end is
record-for-record identical (modulo the repo-wide volatile fields)
to what ``Campaign.run(store=...)`` would have written single-box,
including the append order.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.errors import ConfigurationError
from repro.fleet.coordinator import FleetCoordinator, FleetRunStats
from repro.fleet.transport import transport_from_name
from repro.results.store import ResultStore


class FleetExecutor:
    """Run a campaign's pending specs through a worker fleet."""

    def __init__(
        self,
        workers: int = 2,
        transport: Union[str, Any] = "inprocess",
        chunk_size: Optional[int] = None,
        lease_timeout: float = 30.0,
        max_chunk_attempts: int = 5,
        host: str = "127.0.0.1",
        port: int = 0,
        wait_timeout: Optional[float] = None,
        on_listening: Optional[Any] = None,
        journal: Union[bool, str] = True,
    ):
        if workers < 1:
            raise ConfigurationError(
                f"fleet workers must be >= 1, got {workers}")
        self.workers = workers
        # A string names one of the registered transports; an instance
        # (e.g. a pre-seeded ChaosTransport) is used as-is, so tests
        # can inject misbehaving worker launches through the same door.
        if isinstance(transport, str):
            self._transport: Optional[Any] = None
            self.transport_name = transport
        else:
            self._transport = transport
            self.transport_name = getattr(transport, "name", "custom")
        self.chunk_size = chunk_size
        self.lease_timeout = lease_timeout
        self.max_chunk_attempts = max_chunk_attempts
        self.host = host
        self.port = port
        self.wait_timeout = wait_timeout
        #: Forwarded to the coordinator: True (default) journals next
        #: to the store, a path journals there, False disables crash
        #: durability for this run.
        self.journal = journal
        #: Called with the bound (host, port) once the coordinator is
        #: listening — how ``repro fleet serve`` prints the join line.
        self.on_listening = on_listening
        #: Stats of the most recent :meth:`execute` (for callers that
        #: only see the CampaignRunStats summary).
        self.last_stats: Optional[FleetRunStats] = None

    def execute(self, payloads: Sequence[Dict[str, Any]],
                store: ResultStore) -> FleetRunStats:
        """Fan ``payloads`` (spec dicts, canonical order) out over the
        fleet, merge the shards into ``store``, return the stats."""
        transport = (self._transport if self._transport is not None
                     else transport_from_name(self.transport_name))
        coordinator = FleetCoordinator(
            list(payloads), store,
            chunk_size=self.chunk_size,
            workers_hint=self.workers,
            lease_timeout=self.lease_timeout,
            max_chunk_attempts=self.max_chunk_attempts,
            host=self.host, port=self.port,
            journal=self.journal,
        )
        coordinator.start()
        if self.on_listening is not None:
            self.on_listening(coordinator.address)
        try:
            transport.launch(coordinator.address, self.workers)
            self._supervise(coordinator, transport)
            coordinator.drain()
            transport.join(timeout=30.0)
        except BaseException:  # incl. KeyboardInterrupt: Ctrl-C on a
            # long fleet run is the common abort, and it must salvage
            # too.  Whatever the workers already completed sits in the
            # shard stores, and the next coordinator start() would
            # wipe them as stale; merging the partial result into the
            # target store means an aborted run loses nothing — resume
            # re-executes only what really never finished.
            transport.shutdown()
            coordinator.stop()
            self.last_stats = coordinator.finish(
                transport=self.transport_name)
            if self.last_stats.merged:
                import logging

                logging.getLogger("repro.fleet").warning(
                    "fleet: aborted run salvaged %d completed "
                    "record(s) into %s; resume to finish the remaining "
                    "%d", self.last_stats.merged, store.path,
                    self.last_stats.unfinished)
            raise
        finally:
            transport.shutdown()
            coordinator.stop()
        stats = coordinator.finish(transport=self.transport_name)
        self.last_stats = stats
        return stats

    def _supervise(self, coordinator: FleetCoordinator,
                   transport: Any) -> None:
        """Wait for completion, but refuse to wait on a ghost fleet: a
        supervised transport (we launched every worker ourselves) with
        no live worker and work still pending can never finish."""
        import time as _time

        deadline = (None if self.wait_timeout is None
                    else _time.monotonic() + self.wait_timeout)
        while not coordinator.wait(0.25):
            if getattr(transport, "supervised", False) \
                    and not transport.alive():
                # One last grace period: the final worker may have
                # exited a beat before the done flag was raised.
                if coordinator.wait(1.0):
                    return
                raise ConfigurationError(
                    f"every fleet worker exited with work still "
                    f"pending: {coordinator.status()}")
            if deadline is not None and _time.monotonic() > deadline:
                raise ConfigurationError(
                    f"fleet run did not finish within "
                    f"{self.wait_timeout}s: {coordinator.status()}")


def run_fleet_campaign(
    payloads: List[Dict[str, Any]],
    store: ResultStore,
    **executor_options: Any,
) -> FleetRunStats:
    """Convenience one-shot: specs dicts in, merged store + stats out."""
    return FleetExecutor(**executor_options).execute(payloads, store)
